//! The parallel multi-metric evaluation subsystem.
//!
//! The paper's Tables 3-5 are per-client ROC AUC grids over the nine
//! Table 2 clients; each client's test split is private and independent,
//! so evaluation — like training — is embarrassingly parallel. This
//! module provides:
//!
//! - [`EvalReport`] — the full per-client evaluation record: ROC AUC
//!   (the paper's table cell), average precision, the confusion matrix at
//!   the paper's 0.5 deployment threshold, and class-conditional score
//!   histograms,
//! - [`evaluate_report`] / [`evaluate_auc`] — single-model evaluation on
//!   one client's split,
//! - [`Evaluator`] — the fan-out: one worker per client (up to the
//!   thread budget), each building its own model from the shared
//!   [`ModelFactory`], loading the deployed state dict and computing an
//!   [`EvalReport`]; results are reduced in fixed client order on the
//!   caller's thread.
//!
//! # Determinism contract
//!
//! Evaluation is forward-only and per-client independent: every worker
//! loads the full state dict (parameters *and* BatchNorm buffers) into a
//! factory-fresh model, so the computation per client is identical
//! whether it runs inline or on any worker. Results are **bit-identical
//! at every thread count**; `tests/parallel_determinism.rs` pins every
//! [`EvalReport`] field between 1 and 4 threads.

use rte_metrics::{average_precision, roc_auc, ConfusionMatrix, ScoreHistogram, DEFAULT_BINS};
use rte_nn::{load_state_dict, Layer, StateDict};
use rte_tensor::parallel::{map_with, Parallelism};

use crate::{Client, ClientSet, FedError, ModelFactory};

/// The deployment decision threshold the paper's confusion counts use
/// (`score >= 0.5` ⇒ predicted hotspot).
pub const DECISION_THRESHOLD: f32 = 0.5;

/// Full evaluation record for one model on one client's test split.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalReport {
    /// ROC AUC — the paper's table metric (rank estimator, ties at
    /// midrank).
    pub auc: f64,
    /// Average precision (area under the precision-recall curve), the
    /// imbalance-robust companion metric.
    pub average_precision: f64,
    /// Confusion counts at [`DECISION_THRESHOLD`].
    pub confusion: ConfusionMatrix,
    /// Class-conditional score histogram ([`DEFAULT_BINS`] buckets over
    /// `[0, 1]`, out-of-range scores clamped into the edge buckets).
    pub histogram: ScoreHistogram,
}

impl EvalReport {
    /// Computes every metric from raw scores and labels.
    ///
    /// # Errors
    ///
    /// Returns [`FedError::Metrics`] when the labels contain a single
    /// class (AUC undefined), lengths mismatch, or scores contain NaN.
    pub fn from_scores(scores: &[f32], labels: &[bool]) -> Result<Self, FedError> {
        Ok(EvalReport {
            auc: roc_auc(scores, labels)?,
            average_precision: average_precision(scores, labels)?,
            confusion: ConfusionMatrix::from_scores(scores, labels, DECISION_THRESHOLD)?,
            histogram: ScoreHistogram::from_scores(scores, labels, DEFAULT_BINS, 0.0, 1.0)?,
        })
    }

    /// Number of test tiles this report covers.
    pub fn n_samples(&self) -> usize {
        self.confusion.total()
    }
}

/// Mean AUC over a slice of reports (0 when empty) — the "Average"
/// column of the paper's tables.
pub fn mean_auc(reports: &[EvalReport]) -> f64 {
    if reports.is_empty() {
        0.0
    } else {
        reports.iter().map(|r| r.auc).sum::<f64>() / reports.len() as f64
    }
}

/// Per-client AUCs in report order — the scalar view the table renderers
/// and regression tests consume.
pub fn aucs(reports: &[EvalReport]) -> Vec<f64> {
    reports.iter().map(|r| r.auc).collect()
}

/// Forwards `model` over `set` in minibatches of `batch_size` in
/// evaluation mode (BatchNorm running statistics, the paper's deployment
/// condition), returning the flattened per-tile scores and labels.
fn collect_scores(
    model: &mut dyn Layer,
    set: &ClientSet,
    batch_size: usize,
) -> Result<(Vec<f32>, Vec<bool>), FedError> {
    if set.is_empty() {
        return Err(FedError::InvalidConfig {
            reason: "evaluation on empty client set".into(),
        });
    }
    if batch_size == 0 {
        return Err(FedError::InvalidConfig {
            reason: "evaluation batch_size must be positive".into(),
        });
    }
    let n = set.len();
    let (_, h, w) = set.geometry();
    let mut scores = Vec::with_capacity(n * h * w);
    let mut labels = Vec::with_capacity(n * h * w);
    let mut start = 0usize;
    while start < n {
        let end = (start + batch_size).min(n);
        let (x, y) = set.try_minibatch_range(start..end)?;
        let pred = model.forward(&x, false)?;
        scores.extend_from_slice(pred.data());
        labels.extend(y.data().iter().map(|&v| v > 0.5));
        start = end;
    }
    Ok((scores, labels))
}

/// Evaluates a model on `set`, producing the full [`EvalReport`].
///
/// # Errors
///
/// Returns [`FedError`] on forward errors, an empty set, a zero batch
/// size, or a test split containing only one class.
pub fn evaluate_report(
    model: &mut dyn Layer,
    set: &ClientSet,
    batch_size: usize,
) -> Result<EvalReport, FedError> {
    let (scores, labels) = collect_scores(model, set, batch_size)?;
    EvalReport::from_scores(&scores, &labels)
}

/// Evaluates a model's ROC AUC on `set` — the scalar fast path kept for
/// deployments that only need the paper's table metric.
///
/// # Errors
///
/// Same conditions as [`evaluate_report`].
pub fn evaluate_auc(
    model: &mut dyn Layer,
    set: &ClientSet,
    batch_size: usize,
) -> Result<f64, FedError> {
    let (scores, labels) = collect_scores(model, set, batch_size)?;
    Ok(roc_auc(&scores, &labels)?)
}

/// Fans per-client evaluation out to worker threads.
///
/// Each worker builds one private model via the factory and reuses it
/// across the clients it claims (loading each deployed state dict in
/// full); the caller collects the per-client [`EvalReport`]s in fixed
/// client order. With a serial budget (or one client) everything runs
/// inline on the caller's thread — the same code path, so outcomes are
/// bit-identical for every thread count.
#[derive(Debug, Clone, Copy)]
pub struct Evaluator {
    /// Worker-thread budget (`0` = all cores).
    pub parallelism: Parallelism,
    /// Evaluation minibatch size (forward-only, so large batches are
    /// safe and fast).
    pub batch_size: usize,
}

impl Evaluator {
    /// Creates an evaluator with the given thread budget and batch size.
    pub fn new(parallelism: Parallelism, batch_size: usize) -> Self {
        Evaluator {
            parallelism,
            batch_size,
        }
    }

    /// Evaluates `states[k]` on client `k`'s test split for every `k`
    /// (personalized deployment), clients on worker threads.
    ///
    /// # Errors
    ///
    /// Returns [`FedError::InvalidConfig`] when `states` and `clients`
    /// disagree in length, otherwise the first failing client's error in
    /// client order. A model whose scores the metrics layer rejects
    /// (NaN logits after training blew up) surfaces as
    /// [`FedError::ClientDiverged`] naming that client.
    pub fn eval_states(
        &self,
        factory: &ModelFactory,
        seed: u64,
        clients: &[Client],
        states: &[&StateDict],
    ) -> Result<Vec<EvalReport>, FedError> {
        self.eval_states_cells(factory, seed, clients, states)?
            .into_iter()
            .collect()
    }

    /// Evaluates `states[k]` on client `k`'s test split for every `k`,
    /// keeping per-client failures as cells instead of aborting on the
    /// first one. A client whose deployed model emits scores the metrics
    /// layer rejects (NaN logits, a degenerate sweep) comes back as
    /// `Err(`[`FedError::ClientDiverged`]`)` in its slot; the robustness
    /// grid renders those cells as "diverged" while the healthy clients
    /// keep their reports. Infrastructure failures (state-dict
    /// mismatches, streaming errors) stay as their original variants so
    /// tolerant callers can distinguish "the attack won" from "the
    /// harness is broken".
    ///
    /// # Errors
    ///
    /// The outer `Result` only fails when `states` and `clients`
    /// disagree in length.
    pub fn eval_states_cells(
        &self,
        factory: &ModelFactory,
        seed: u64,
        clients: &[Client],
        states: &[&StateDict],
    ) -> Result<Vec<Result<EvalReport, FedError>>, FedError> {
        if states.len() != clients.len() {
            return Err(FedError::InvalidConfig {
                reason: format!("{} state dicts for {} clients", states.len(), clients.len()),
            });
        }
        let batch_size = self.batch_size;
        let ks: Vec<usize> = (0..clients.len()).collect();
        let results = map_with(
            self.parallelism,
            &ks,
            || factory(seed),
            |model, _, &k| -> Result<EvalReport, FedError> {
                load_state_dict(model.as_mut(), states[k])?;
                evaluate_report(model.as_mut(), &clients[k].test, batch_size)
            },
        );
        Ok(results
            .into_iter()
            .enumerate()
            .map(|(k, r)| {
                r.map_err(|e| match e {
                    FedError::Metrics(m) => FedError::ClientDiverged {
                        client: k,
                        reason: m.to_string(),
                    },
                    other => other,
                })
            })
            .collect())
    }

    /// Evaluates one shared state dict on every client (generalized
    /// deployment).
    ///
    /// # Errors
    ///
    /// See [`Evaluator::eval_states`].
    pub fn eval_global(
        &self,
        factory: &ModelFactory,
        seed: u64,
        clients: &[Client],
        state: &StateDict,
    ) -> Result<Vec<EvalReport>, FedError> {
        let states: Vec<&StateDict> = vec![state; clients.len()];
        self.eval_states(factory, seed, clients, &states)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rte_nn::{NnError, Param};
    use rte_tensor::rng::Xoshiro256;
    use rte_tensor::Tensor;

    /// A fake "model" that echoes one input channel as its score map —
    /// lets us hand-construct AUC outcomes.
    struct EchoChannel(usize);

    impl Layer for EchoChannel {
        fn forward(&mut self, x: &Tensor, _training: bool) -> Result<Tensor, NnError> {
            let (n, _, h, w) = (x.dim(0), x.dim(1), x.dim(2), x.dim(3));
            let mut y = Tensor::zeros(&[n, 1, h, w]);
            let cs = h * w;
            let c_total = x.dim(1);
            for ni in 0..n {
                let src = &x.data()[(ni * c_total + self.0) * cs..(ni * c_total + self.0 + 1) * cs];
                y.data_mut()[ni * cs..(ni + 1) * cs].copy_from_slice(src);
            }
            Ok(y)
        }

        fn backward(&mut self, dy: &Tensor) -> Result<Tensor, NnError> {
            Ok(dy.clone())
        }

        fn visit_params(&mut self, _p: &str, _f: &mut dyn FnMut(String, &mut Param)) {}
    }

    fn set_with_labels_equal_to_channel0() -> ClientSet {
        // Channel 0 is exactly the label → perfect AUC.
        let mut x = Tensor::zeros(&[2, 2, 2, 2]);
        let mut y = Tensor::zeros(&[2, 1, 2, 2]);
        for i in 0..8 {
            let v = if i % 3 == 0 { 1.0 } else { 0.0 };
            x.data_mut()[(i / 4) * 8 + (i % 4)] = v;
            y.data_mut()[i] = v;
        }
        ClientSet::new(x, y).unwrap()
    }

    #[test]
    fn perfect_predictor_scores_one() {
        let set = set_with_labels_equal_to_channel0();
        let mut model = EchoChannel(0);
        let auc = evaluate_auc(&mut model, &set, 1).unwrap();
        assert_eq!(auc, 1.0);
    }

    #[test]
    fn uninformative_predictor_scores_half() {
        let set = set_with_labels_equal_to_channel0();
        // Channel 1 is all zeros → constant score → AUC 0.5 via midranks.
        let mut model = EchoChannel(1);
        let auc = evaluate_auc(&mut model, &set, 4).unwrap();
        assert_eq!(auc, 0.5);
    }

    #[test]
    fn batch_size_does_not_change_result() {
        let set = set_with_labels_equal_to_channel0();
        let a = evaluate_report(&mut EchoChannel(0), &set, 1).unwrap();
        let b = evaluate_report(&mut EchoChannel(0), &set, 64).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn zero_batch_size_is_invalid_config() {
        let set = set_with_labels_equal_to_channel0();
        assert!(matches!(
            evaluate_auc(&mut EchoChannel(0), &set, 0),
            Err(FedError::InvalidConfig { .. })
        ));
        assert!(matches!(
            evaluate_report(&mut EchoChannel(0), &set, 0),
            Err(FedError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn single_class_split_is_error() {
        let x = Tensor::zeros(&[1, 1, 2, 2]);
        let y = Tensor::zeros(&[1, 1, 2, 2]);
        let set = ClientSet::new(x, y).unwrap();
        assert!(matches!(
            evaluate_auc(&mut EchoChannel(0), &set, 2),
            Err(FedError::Metrics(_))
        ));
    }

    #[test]
    fn report_carries_every_metric() {
        let set = set_with_labels_equal_to_channel0();
        let report = evaluate_report(&mut EchoChannel(0), &set, 4).unwrap();
        assert_eq!(report.auc, 1.0);
        assert!((report.average_precision - 1.0).abs() < 1e-12);
        // Perfect echo at threshold 0.5: 3 ones, 5 zeros, no mistakes.
        assert_eq!(report.confusion.true_positives, 3);
        assert_eq!(report.confusion.true_negatives, 5);
        assert_eq!(report.confusion.accuracy(), 1.0);
        assert_eq!(report.n_samples(), 8);
        assert_eq!(report.histogram.total(), 8);
        assert_eq!(mean_auc(std::slice::from_ref(&report)), 1.0);
        assert_eq!(aucs(&[report]), vec![1.0]);
        assert_eq!(mean_auc(&[]), 0.0);
    }

    fn echo_factory(channel: usize) -> ModelFactory {
        Box::new(move |_seed| Box::new(EchoChannel(channel)))
    }

    fn synthetic_clients(n: usize) -> Vec<Client> {
        (0..n)
            .map(|k| {
                let make = |salt: u64| {
                    let mut rng = Xoshiro256::seed_from((100 + k as u64) ^ salt);
                    let x = Tensor::from_fn(&[3, 2, 4, 4], |_| rng.uniform());
                    let mut y = Tensor::zeros(&[3, 1, 4, 4]);
                    for i in 0..48 {
                        y.data_mut()[i] = if x.data()[(i / 16) * 32 + (i % 16)] > 0.5 {
                            1.0
                        } else {
                            0.0
                        };
                    }
                    ClientSet::new(x, y).unwrap()
                };
                Client::new(k + 1, make(0xA), make(0xB))
            })
            .collect()
    }

    #[test]
    fn evaluator_matches_inline_evaluation_at_any_thread_count() {
        let clients = synthetic_clients(3);
        let factory = echo_factory(0);
        let state = StateDict::new(); // EchoChannel has no parameters
        let states: Vec<&StateDict> = vec![&state; 3];
        let serial = Evaluator::new(Parallelism::serial(), 4)
            .eval_states(&factory, 0, &clients, &states)
            .unwrap();
        let threaded = Evaluator::new(Parallelism::new(4), 4)
            .eval_states(&factory, 0, &clients, &states)
            .unwrap();
        assert_eq!(serial, threaded);
        for (k, report) in serial.iter().enumerate() {
            let inline = evaluate_report(&mut EchoChannel(0), &clients[k].test, 4).unwrap();
            assert_eq!(*report, inline, "client {k}");
        }
    }

    /// Emits NaN for every score — a stand-in for a model whose training
    /// blew up under attack.
    struct NanModel;

    impl Layer for NanModel {
        fn forward(&mut self, x: &Tensor, _training: bool) -> Result<Tensor, NnError> {
            let (n, h, w) = (x.dim(0), x.dim(2), x.dim(3));
            Ok(Tensor::from_fn(&[n, 1, h, w], |_| f32::NAN))
        }

        fn backward(&mut self, dy: &Tensor) -> Result<Tensor, NnError> {
            Ok(dy.clone())
        }

        fn visit_params(&mut self, _p: &str, _f: &mut dyn FnMut(String, &mut Param)) {}
    }

    #[test]
    fn nan_logits_surface_as_typed_divergence_not_a_panic() {
        let clients = synthetic_clients(2);
        let factory: ModelFactory = Box::new(|_seed| Box::new(NanModel));
        let state = StateDict::new();
        let states: Vec<&StateDict> = vec![&state; 2];
        let evaluator = Evaluator::new(Parallelism::serial(), 4);

        // Tolerant path: one diverged cell per client, nothing aborts.
        let cells = evaluator
            .eval_states_cells(&factory, 0, &clients, &states)
            .unwrap();
        assert_eq!(cells.len(), 2);
        for (k, cell) in cells.iter().enumerate() {
            assert!(
                matches!(cell, Err(FedError::ClientDiverged { client, .. }) if *client == k),
                "cell {k}: {cell:?}"
            );
        }

        // Strict path: the first diverged client becomes the run's error.
        let err = evaluator
            .eval_states(&factory, 0, &clients, &states)
            .unwrap_err();
        assert!(matches!(err, FedError::ClientDiverged { client: 0, .. }));
    }

    #[test]
    fn evaluator_rejects_mismatched_states() {
        let clients = synthetic_clients(2);
        let factory = echo_factory(0);
        let state = StateDict::new();
        let err = Evaluator::new(Parallelism::serial(), 4)
            .eval_states(&factory, 0, &clients, &[&state])
            .unwrap_err();
        assert!(matches!(err, FedError::InvalidConfig { .. }));
    }
}
