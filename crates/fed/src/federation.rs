//! Federated rounds as an exchange of serialized deltas over a
//! [`Transport`].
//!
//! This is the seam the paper's deployment story needs: the same
//! FedProx round loop that `methods::fedprox` runs in-process, split
//! into a coordinator half ([`run_rounds_over`]) and a client half
//! ([`ClientSession`]) that only talk through [`crate::wire::Message`]s.
//! The split is engineered to be *bit-identical* to the in-process
//! path:
//!
//! - both sides derive their RNG streams from the same
//!   `methods::fleet_rng(seed)` root, and a client's training stream is
//!   `round_client_rng(root, round, me)` — exactly what the in-process
//!   round loop's workers draw,
//! - the coordinator deploys to, and collects from, participants in the
//!   same fixed order `Harness::participants` yields, so aggregation
//!   sees updates in the identical order,
//! - state dicts cross the wire in the lossless `rte_nn::serialize`
//!   format (f32 bits verbatim).
//!
//! `tests/transport_determinism.rs` pins the equivalence across the
//! in-process harness, the channel backend, and the UDS backend.
//!
//! With a [`SecureConfig`], clients send pairwise-masked quantized
//! updates instead of raw parameters ([`crate::secure`]), and the
//! coordinator can only recover the *sum* — never an individual update.

use rte_net::{ChannelTransport, Frame, NetError, Transport};
use rte_nn::{load_state_dict, state_dict, StateDict};
use rte_tensor::rng::Xoshiro256;

use crate::methods::{
    fleet_rng, mean_loss, round_client_rng, ClientUpdate, Harness, MethodOutcome, RoundRecord,
};
use crate::params::aggregate;
use crate::secure::{aggregate_masked, mask_update, MaskedUpdate, SecureConfig};
use crate::wire::{net_err, recv_message_within, send_message, Message};
use crate::{Client, FedConfig, FedError, LocalTrainer, Method, ModelFactory};

/// The coordinator's frame sender id (clients are `1 + fleet index`).
pub const COORDINATOR: u32 = 0;

/// Upper bound on how long the plain coordinator loop waits for any
/// single client update. Not a tuning knob — just the guarantee that a
/// stalled or half-dead peer surfaces as a typed timeout instead of
/// wedging the coordinator forever (the resilient loop's
/// [`crate::FaultPolicy`] is the configurable version).
const COLLECT_DEADLINE: std::time::Duration = std::time::Duration::from_secs(600);

/// Byte/frame counters a [`LocalLink`] accumulates — the measured
/// communication cost of a federated run over the wire codec.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireStats {
    /// Frames the coordinator sent to this client.
    pub frames_sent: u64,
    /// Frames the coordinator received from this client.
    pub frames_received: u64,
    /// Encoded bytes sent (deploys).
    pub bytes_sent: u64,
    /// Encoded bytes received (updates).
    pub bytes_received: u64,
}

/// One client's half of a federated session: rebuilds the fleet-shared
/// RNG streams from the public config and answers deploys with trained
/// updates. Works over any [`Transport`] via [`ClientSession::serve`],
/// or pumped synchronously by a [`LocalLink`].
pub struct ClientSession<'a> {
    clients: &'a [Client],
    me: usize,
    factory: &'a ModelFactory,
    config: &'a FedConfig,
    trainer: LocalTrainer,
    root_rng: Xoshiro256,
    secure: Option<SecureConfig>,
    seq: u64,
}

impl<'a> ClientSession<'a> {
    /// Builds the session for fleet position `me`.
    ///
    /// `clients` is the full fleet, deterministically rebuilt on both
    /// sides from the shared experiment config — the session only ever
    /// touches `clients[me]`'s private data, but needs the fleet shape
    /// for its weight and id.
    ///
    /// # Errors
    ///
    /// Returns [`FedError::InvalidConfig`] for an out-of-range `me` or
    /// an invalid config.
    pub fn new(
        clients: &'a [Client],
        me: usize,
        factory: &'a ModelFactory,
        config: &'a FedConfig,
        secure: Option<SecureConfig>,
    ) -> Result<Self, FedError> {
        if me >= clients.len() {
            return Err(FedError::InvalidConfig {
                reason: format!(
                    "client index {me} out of range for {} clients",
                    clients.len()
                ),
            });
        }
        config.validate_core()?;
        let trainer =
            LocalTrainer::new(config.lr, config.weight_decay, config.mu, config.batch_size);
        Ok(ClientSession {
            clients,
            me,
            factory,
            config,
            trainer,
            root_rng: fleet_rng(config.seed),
            secure,
            seq: 0,
        })
    }

    /// This session's frame sender id.
    pub fn sender_id(&self) -> u32 {
        self.me as u32 + 1
    }

    /// The client's aggregation weight (its training sample count).
    pub fn weight(&self) -> u64 {
        self.clients[self.me].weight() as u64
    }

    /// Trains one deployed slot: exactly the computation the in-process
    /// round loop's worker performs for `(round, me)` — fresh model from
    /// the shared factory, deployed start state, the per-`(round, client)`
    /// RNG stream, proximal reference = start, then the scenario's
    /// Byzantine corruption if one is configured.
    ///
    /// # Errors
    ///
    /// Returns any training failure.
    pub fn train_slot(
        &mut self,
        round: u64,
        steps: usize,
        start: &StateDict,
    ) -> Result<(StateDict, f32), FedError> {
        let mut model = (self.factory)(self.config.seed);
        load_state_dict(model.as_mut(), start)?;
        let mut rng = round_client_rng(&self.root_rng, round as usize, self.me);
        let loss = self.trainer.train(
            model.as_mut(),
            &self.clients[self.me].train,
            Some(start),
            steps,
            &mut rng,
        )?;
        let mut out = state_dict(model.as_mut());
        if let Some(scenario) = &self.config.scenario {
            if let Some(corrupted) =
                scenario.corrupt_update(round as usize, self.me, start, &out)?
            {
                out = corrupted;
            }
        }
        Ok((out, loss))
    }

    /// Handles one incoming message, returning the reply to send (or
    /// `None` after a shutdown).
    ///
    /// # Errors
    ///
    /// Returns [`FedError::Transport`] for messages a client must never
    /// receive, or any training failure.
    pub fn handle(&mut self, message: Message) -> Result<Option<Message>, FedError> {
        match message {
            Message::Deploy {
                round,
                steps,
                participants,
                state,
            } => {
                let (out, loss) = self.train_slot(round, steps as usize, &state)?;
                let reply = if let Some(cfg) = self.secure {
                    let masked = mask_update(
                        &out,
                        self.weight() as f64,
                        self.me as u32,
                        &participants,
                        round,
                        &cfg,
                    );
                    Message::SecureUpdate {
                        round,
                        client: self.me as u32,
                        loss,
                        masked,
                    }
                } else {
                    Message::Update {
                        round,
                        client: self.me as u32,
                        loss,
                        state: out,
                    }
                };
                Ok(Some(reply))
            }
            Message::Shutdown => Ok(None),
            other => Err(FedError::Transport {
                reason: format!(
                    "client expected deploy or shutdown, got kind {}",
                    other.kind()
                ),
            }),
        }
    }

    /// Sends the opening [`Message::Hello`].
    ///
    /// # Errors
    ///
    /// Returns [`FedError::Transport`] on wire failures.
    pub fn hello<T: Transport>(&mut self, transport: &mut T) -> Result<(), FedError> {
        let msg = Message::Hello {
            client: self.me as u32,
            weight: self.weight(),
        };
        let seq = self.next_seq();
        send_message(transport, msg, self.sender_id(), seq)
    }

    /// Serves deploys over `transport` until a shutdown arrives or the
    /// peer hangs up (both are clean exits — a coordinator crash should
    /// not strand client processes).
    ///
    /// # Errors
    ///
    /// Returns [`FedError::Transport`] for wire damage or protocol
    /// violations, or any training failure.
    pub fn serve<T: Transport>(&mut self, transport: &mut T) -> Result<(), FedError> {
        self.serve_once(transport).map(|_| ())
    }

    /// Serves deploys over `transport`, distinguishing *how* the session
    /// ended: an explicit [`Message::Shutdown`] versus the peer hanging
    /// up. Reconnect logic needs the distinction — a shutdown is final,
    /// a hang-up is worth dialling again.
    ///
    /// # Errors
    ///
    /// Returns [`FedError::Transport`] for wire damage or protocol
    /// violations, or any training failure.
    pub fn serve_once<T: Transport>(&mut self, transport: &mut T) -> Result<ServeExit, FedError> {
        loop {
            let frame = match transport.recv() {
                Ok(frame) => frame,
                Err(NetError::Closed) => return Ok(ServeExit::PeerClosed),
                Err(e) => return Err(net_err(e)),
            };
            let message = Message::from_frame(&frame)?;
            match self.handle(message)? {
                Some(reply) => {
                    let seq = self.next_seq();
                    send_message(transport, reply, self.sender_id(), seq)?;
                }
                None => return Ok(ServeExit::Shutdown),
            }
        }
    }

    /// Serves with automatic reconnect: `connect` dials a fresh
    /// transport (attempt number passed in), the session re-handshakes
    /// with [`ClientSession::hello`], and serving resumes. Round resync
    /// is inherent — every deploy carries its own round number and the
    /// session is stateless between deploys, so the next deploy after a
    /// reconnect trains exactly the slot the coordinator re-sent.
    ///
    /// Reconnects (after a hang-up or a wire error) draw from `policy`:
    /// up to `max_attempts` dials total, backing off with the
    /// per-client-salted jitter stream. A [`ServeExit::Shutdown`] ends
    /// the session for good.
    ///
    /// # Errors
    ///
    /// The final connect or serve error once the policy is exhausted,
    /// or immediately for non-transport failures (training errors).
    pub fn serve_with_reconnect<T, F>(
        &mut self,
        policy: &rte_net::RetryPolicy,
        mut connect: F,
    ) -> Result<(), FedError>
    where
        T: Transport,
        F: FnMut(u32) -> Result<T, NetError>,
    {
        let salt = self.me as u64;
        let attempts = policy.max_attempts.max(1);
        let mut attempt = 0u32;
        loop {
            let mut transport = match connect(attempt) {
                Ok(t) => t,
                Err(e) => {
                    if attempt + 1 >= attempts {
                        return Err(net_err(e));
                    }
                    policy.sleep(attempt, salt);
                    attempt += 1;
                    continue;
                }
            };
            self.hello(&mut transport)?;
            match self.serve_once(&mut transport) {
                Ok(ServeExit::Shutdown) => return Ok(()),
                Ok(ServeExit::PeerClosed) | Err(FedError::Transport { .. }) => {
                    if attempt + 1 >= attempts {
                        // A hang-up with no budget left is the clean
                        // exit `serve` always treated it as.
                        return Ok(());
                    }
                    policy.sleep(attempt, salt);
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn next_seq(&mut self) -> u64 {
        let seq = self.seq;
        self.seq += 1;
        seq
    }
}

/// How a [`ClientSession::serve_once`] call ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeExit {
    /// The coordinator sent an explicit shutdown: the run is over.
    Shutdown,
    /// The peer hung up without a shutdown — worth reconnecting.
    PeerClosed,
}

/// An in-process link: the coordinator's [`Transport`] endpoint with the
/// client's [`ClientSession`] attached behind the channel backend.
///
/// Frames still round-trip through the full encoder/decoder — the wire
/// format is on the path — but the client runs synchronously on the
/// coordinator's thread when the coordinator sends, so no threads are
/// involved and the backend stays inside determinism rules 1-7.
pub struct LocalLink<'a> {
    near: ChannelTransport,
    far: ChannelTransport,
    session: ClientSession<'a>,
    /// Accumulated traffic counters for this link.
    pub stats: WireStats,
}

impl<'a> LocalLink<'a> {
    /// Wraps `session` behind a fresh channel pair.
    pub fn new(session: ClientSession<'a>) -> Self {
        let (near, far) = ChannelTransport::pair();
        LocalLink {
            near,
            far,
            session,
            stats: WireStats::default(),
        }
    }

    /// Drains every frame the coordinator queued, letting the session
    /// answer each one.
    fn pump(&mut self) -> Result<(), NetError> {
        while let Some(frame) = self.far.try_recv()? {
            let message = Message::from_frame(&frame).map_err(fed_err_to_net)?;
            match self.session.handle(message).map_err(fed_err_to_net)? {
                Some(reply) => {
                    let seq = self.session.next_seq();
                    let sender = self.session.sender_id();
                    let reply_frame = reply.into_frame(sender, seq).map_err(fed_err_to_net)?;
                    self.stats.frames_received += 1;
                    self.stats.bytes_received += reply_frame.encoded_len() as u64;
                    self.far.send(&reply_frame)?;
                }
                None => break,
            }
        }
        Ok(())
    }
}

/// A client-side failure surfaced through the coordinator's transport.
fn fed_err_to_net(e: FedError) -> NetError {
    NetError::Protocol {
        reason: e.to_string(),
    }
}

impl Transport for LocalLink<'_> {
    fn send(&mut self, frame: &Frame) -> Result<(), NetError> {
        self.stats.frames_sent += 1;
        self.stats.bytes_sent += frame.encoded_len() as u64;
        self.near.send(frame)?;
        self.pump()
    }

    fn recv(&mut self) -> Result<Frame, NetError> {
        self.near.recv()
    }

    /// A `LocalLink` client answers synchronously at send time, so a
    /// reply is either already queued or never coming: an empty queue
    /// *is* the timeout, reported immediately with zero wall-clock
    /// involvement. This is what keeps chaos + retry schedules over the
    /// channel backend fully deterministic.
    fn recv_timeout(&mut self, _timeout: std::time::Duration) -> Result<Frame, NetError> {
        match self.near.try_recv()? {
            Some(frame) => Ok(frame),
            None => Err(NetError::Timeout),
        }
    }
}

/// Validates an update's envelope against what the coordinator expects.
fn check_envelope(
    round: usize,
    expected: usize,
    got_round: u64,
    got_client: u32,
) -> Result<(), FedError> {
    if got_round != round as u64 || got_client != expected as u32 {
        return Err(FedError::Transport {
            reason: format!(
                "expected round {round} update from client {expected}, \
                 got round {got_round} from client {got_client}"
            ),
        });
    }
    Ok(())
}

/// Runs the FedProx round loop with every client behind a transport
/// link: `links[k]` speaks to fleet client `k`. Deploys go to, and
/// updates are collected from, participants in `Harness::participants`
/// order, so the outcome is bit-identical to [`crate::methods::run_method`]
/// on the same inputs (pinned by `tests/transport_determinism.rs`).
///
/// With `secure`, clients return pairwise-masked quantized updates and
/// the aggregate is the exact masked weighted mean ([`crate::secure`]);
/// this path is privacy-preserving but quantized, so it is *not*
/// bit-identical to the plain path (it is bit-identical to the plain
/// *quantized* path, which the secure-aggregation property tests pin).
///
/// # Errors
///
/// - [`FedError::InvalidConfig`] for a non-FedProx method, a link/fleet
///   size mismatch, or secure mode with a non-weighted-mean rule.
/// - [`FedError::Transport`] for wire damage or protocol violations.
/// - [`FedError::SecureAggregation`] when masked updates cannot cancel.
pub fn run_rounds_over<T: Transport>(
    method: Method,
    clients: &[Client],
    factory: &ModelFactory,
    config: &FedConfig,
    links: &mut [T],
    secure: Option<SecureConfig>,
) -> Result<MethodOutcome, FedError> {
    if method != Method::FedProx {
        return Err(FedError::InvalidConfig {
            reason: format!("only the FedProx family runs over a transport, not {method}"),
        });
    }
    if links.len() != clients.len() {
        return Err(FedError::InvalidConfig {
            reason: format!("{} links for {} clients", links.len(), clients.len()),
        });
    }
    if secure.is_some() && config.aggregation != crate::Aggregation::WeightedMean {
        return Err(FedError::InvalidConfig {
            reason: "secure aggregation supports only the weighted mean \
                     (robust rules need individual updates)"
                .into(),
        });
    }

    let mut harness = Harness::new(clients, factory, config)?;
    let mut global = harness.initial_state();
    let mut history = Vec::new();
    let mut seq = 0u64;
    for round in 1..=config.rounds {
        let participants = harness.participants(round);
        let part_ids: Vec<u32> = participants.iter().map(|&k| k as u32).collect();
        for &k in &participants {
            send_message(
                &mut links[k],
                Message::Deploy {
                    round: round as u64,
                    steps: config.local_steps as u64,
                    participants: part_ids.clone(),
                    state: global.clone(),
                },
                COORDINATOR,
                seq,
            )?;
            seq += 1;
        }
        if let Some(cfg) = secure {
            let mut masked: Vec<MaskedUpdate> = Vec::with_capacity(participants.len());
            let mut losses: Vec<f32> = Vec::with_capacity(participants.len());
            for &k in &participants {
                let (_, message) = recv_message_within(&mut links[k], COLLECT_DEADLINE)?;
                match message {
                    Message::SecureUpdate {
                        round: r,
                        client,
                        loss,
                        masked: m,
                    } => {
                        check_envelope(round, k, r, client)?;
                        masked.push(m);
                        losses.push(loss);
                    }
                    other => {
                        return Err(FedError::Transport {
                            reason: format!("expected secure update, got kind {}", other.kind()),
                        })
                    }
                }
            }
            let weight_sum: f64 = participants
                .iter()
                .map(|&k| clients[k].weight() as f64)
                .sum();
            global = aggregate_masked(&masked, &part_ids, weight_sum, &cfg)?;
            if harness.should_record(round) {
                let reports = harness.eval_global(&global)?;
                let loss = losses.iter().map(|&l| l as f64).sum::<f64>() / losses.len() as f64;
                history.push(RoundRecord::new(round, reports, loss));
            }
        } else {
            let mut updates: Vec<ClientUpdate> = Vec::with_capacity(participants.len());
            for &k in &participants {
                let (_, message) = recv_message_within(&mut links[k], COLLECT_DEADLINE)?;
                match message {
                    Message::Update {
                        round: r,
                        client,
                        loss,
                        state,
                    } => {
                        check_envelope(round, k, r, client)?;
                        updates.push(ClientUpdate {
                            client: k,
                            state,
                            loss,
                        });
                    }
                    other => {
                        return Err(FedError::Transport {
                            reason: format!("expected plain update, got kind {}", other.kind()),
                        })
                    }
                }
            }
            let refs: Vec<(&StateDict, f64)> = updates
                .iter()
                .map(|u| (&u.state, clients[u.client].weight() as f64))
                .collect();
            global = aggregate(&refs, config.aggregation)?;
            if harness.should_record(round) {
                let reports = harness.eval_global(&global)?;
                history.push(RoundRecord::new(round, reports, mean_loss(&updates)));
            }
        }
    }
    for link in links.iter_mut() {
        // A client that already hung up is fine — the run is over.
        let _ = send_message(link, Message::Shutdown, COORDINATOR, seq);
        seq += 1;
    }
    let per_client = harness.eval_global(&global)?;
    Ok(MethodOutcome::new(Method::FedProx, per_client, history))
}

/// Builds one [`LocalLink`] per fleet client — the channel-backend
/// convenience used by the transport determinism tests and the
/// `--transport channel` bench path.
///
/// # Errors
///
/// Returns [`FedError::InvalidConfig`] for an invalid config.
pub fn local_links<'a>(
    clients: &'a [Client],
    factory: &'a ModelFactory,
    config: &'a FedConfig,
    secure: Option<SecureConfig>,
) -> Result<Vec<LocalLink<'a>>, FedError> {
    (0..clients.len())
        .map(|me| {
            Ok(LocalLink::new(ClientSession::new(
                clients, me, factory, config, secure,
            )?))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::run_method;
    use crate::methods::test_support::{clients, factory};

    #[test]
    fn channel_rounds_match_in_process_bitwise() {
        let clients = clients(3);
        let factory = factory();
        let mut config = FedConfig::tiny();
        config.eval_every = 1;
        let reference = run_method(Method::FedProx, &clients, &factory, &config).unwrap();
        let mut links = local_links(&clients, &factory, &config, None).unwrap();
        let wired = run_rounds_over(
            Method::FedProx,
            &clients,
            &factory,
            &config,
            &mut links,
            None,
        )
        .unwrap();
        assert_eq!(wired, reference);
        assert!(links[0].stats.frames_sent > 0);
        assert!(links[0].stats.bytes_received > 0);
    }

    #[test]
    fn secure_rounds_complete_and_learn_nothing_individually() {
        let clients = clients(3);
        let factory = factory();
        let config = FedConfig::tiny();
        let secure = Some(SecureConfig::default());
        let mut links = local_links(&clients, &factory, &config, secure).unwrap();
        let outcome = run_rounds_over(
            Method::FedProx,
            &clients,
            &factory,
            &config,
            &mut links,
            secure,
        )
        .unwrap();
        assert_eq!(outcome.per_client_auc.len(), 3);
        assert!(outcome.average_auc.is_finite());
    }

    #[test]
    fn non_fedprox_methods_are_rejected() {
        let clients = clients(2);
        let factory = factory();
        let config = FedConfig::tiny();
        let mut links = local_links(&clients, &factory, &config, None).unwrap();
        let err = run_rounds_over(
            Method::LocalOnly,
            &clients,
            &factory,
            &config,
            &mut links,
            None,
        )
        .unwrap_err();
        assert!(matches!(err, FedError::InvalidConfig { .. }), "{err}");
    }

    #[test]
    fn link_count_mismatch_is_rejected() {
        let clients = clients(2);
        let factory = factory();
        let config = FedConfig::tiny();
        let mut links = local_links(&clients[..1], &factory, &config, None).unwrap();
        assert!(run_rounds_over(
            Method::FedProx,
            &clients,
            &factory,
            &config,
            &mut links,
            None
        )
        .is_err());
    }
}
