//! Fault-tolerant coordinator rounds: deadlines, retries, and
//! quorum-based graceful degradation.
//!
//! [`run_rounds_resilient`] is [`crate::run_rounds_over`]'s hardened
//! sibling: every client read goes through
//! [`Transport::recv_timeout`], a failed slot is re-deployed under a
//! seeded [`RetryPolicy`], and a round may complete with a *subset* of
//! its participants — survivors are reweighted deterministically (the
//! weighted aggregate normalizes by the surviving weight sum), missing
//! clients become typed [`RoundEvent`]s, and only falling below
//! `min_quorum` aborts the run (as [`FedError::QuorumLost`]).
//!
//! Determinism under chaos (contract rule 9): re-training a re-deployed
//! slot is bit-identical to the first attempt (the per-`(round, client)`
//! RNG stream is derived statelessly), every fault decision comes from
//! the chaos wrapper's seeded streams, and [`crate::LocalLink`]'s
//! `recv_timeout` reports an empty queue as an immediate timeout — so a
//! whole faulty run over the channel backend touches no wall clock and
//! replays bit for bit.
//!
//! The loop is plain-aggregation only: secure aggregation's pairwise
//! masks cancel only over the *full* mask set, so a quorum shortfall
//! would make the sum garbage — the combination is rejected up front.

use std::fmt;
use std::time::Duration;

use rte_net::{NetError, RetryPolicy, Transport};
use rte_nn::StateDict;

use crate::federation::COORDINATOR;
use crate::methods::{mean_loss, ClientUpdate, Harness, MethodOutcome, RoundRecord};
use crate::params::aggregate;
use crate::wire::{net_err, send_message, Message};
use crate::{Client, FedConfig, FedError, Method, ModelFactory};

/// How many stale or duplicate frames one client slot may drain in one
/// round before the slot is declared missed — bounds the loop when a
/// duplicating link floods the queue.
const STALE_BUDGET: u32 = 64;

/// Deadlines, retry budget, and the survival threshold for one run.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPolicy {
    /// Per-attempt deadline on a client's update. Over a `LocalLink`
    /// this is consulted but never slept on (an empty queue times out
    /// immediately); over a socket it is the real read deadline.
    pub deadline: Duration,
    /// Attempts per client slot per round (deploy + collect counts as
    /// one attempt), with seeded-jitter backoff between them.
    pub retry: RetryPolicy,
    /// Minimum surviving updates a round needs; fewer aborts the run
    /// with [`FedError::QuorumLost`]. Clamped to at least 1.
    pub min_quorum: usize,
}

impl Default for FaultPolicy {
    fn default() -> Self {
        FaultPolicy {
            deadline: Duration::from_secs(5),
            retry: RetryPolicy::default(),
            min_quorum: 1,
        }
    }
}

/// One observed fault, attributed to a `(round, client)` slot — the
/// typed record that replaces aborting on a missing client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RoundEvent {
    /// An attempt failed and the slot was re-deployed.
    Retry {
        /// Round the slot belongs to.
        round: usize,
        /// Fleet index of the client.
        client: usize,
        /// 0-based attempt number that failed.
        attempt: u32,
        /// The typed error's rendering (timeout, payload checksum
        /// mismatch, …).
        reason: String,
    },
    /// Every attempt failed; the round proceeded without this client.
    Missed {
        /// Round the slot belongs to.
        round: usize,
        /// Fleet index of the client.
        client: usize,
        /// Attempts that were made.
        attempts: u32,
    },
    /// A stale or duplicate frame (an earlier round's update surfacing
    /// late) was drained and discarded.
    Stale {
        /// Round being collected when the frame surfaced.
        round: usize,
        /// Fleet index of the link it surfaced on.
        client: usize,
        /// The round the frame claimed.
        got_round: u64,
    },
}

impl fmt::Display for RoundEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RoundEvent::Retry {
                round,
                client,
                attempt,
                reason,
            } => write!(
                f,
                "round {round} client {client}: attempt {attempt} failed ({reason}), retrying"
            ),
            RoundEvent::Missed {
                round,
                client,
                attempts,
            } => write!(
                f,
                "round {round} client {client}: missed after {attempts} attempts"
            ),
            RoundEvent::Stale {
                round,
                client,
                got_round,
            } => write!(
                f,
                "round {round} client {client}: discarded stale frame from round {got_round}"
            ),
        }
    }
}

/// Where a resumed run picks up: the last completed round, the
/// coordinator frame sequence, and the global state at that point —
/// exactly what a [`crate::checkpoint::Checkpoint`] carries.
#[derive(Debug, Clone, PartialEq)]
pub struct ResumePoint {
    /// Rounds already completed (training restarts at `round + 1`).
    pub round: usize,
    /// Coordinator frame sequence counter to continue from.
    pub seq: u64,
    /// The aggregated global state after `round`.
    pub state: StateDict,
}

/// What a resilient run produces: the usual outcome plus the fault log.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilientOutcome {
    /// The trained outcome (same shape as the non-resilient path).
    pub outcome: MethodOutcome,
    /// Every fault, in the deterministic order it was observed.
    pub events: Vec<RoundEvent>,
    /// Total re-deploy attempts across the run.
    pub retries: u64,
    /// Rounds that completed (always `config.rounds` on `Ok`).
    pub completed_rounds: usize,
}

/// Per-round observer: fired after each aggregated round with
/// `(round, seq, global state)` — the checkpoint writer's shape.
pub type RoundHook<'a> = dyn FnMut(usize, u64, &StateDict) -> Result<(), FedError> + 'a;

/// Runs the FedProx round loop with per-client deadlines, seeded
/// retries, and quorum degradation. `on_round` fires after every
/// completed round with `(round, seq, global state)` — the checkpoint
/// writer's hook; an error from it aborts the run.
///
/// With `resume`, rounds `1..=resume.round` are skipped and the global
/// state starts from the resume point: because participant selection
/// and per-`(round, client)` training streams are derived statelessly
/// from the config seed, the remaining rounds are bit-identical to the
/// uninterrupted run's (round history before the resume point is not
/// re-recorded — resumed runs are for final-table workloads).
///
/// # Errors
///
/// - [`FedError::InvalidConfig`] for link/fleet mismatches, a quorum
///   larger than the fleet, or a resume point past the end.
/// - [`FedError::QuorumLost`] when a round's survivors fall below
///   `min_quorum`.
/// - [`FedError::Transport`] for protocol violations no retry can fix.
pub fn run_rounds_resilient<T: Transport>(
    clients: &[Client],
    factory: &ModelFactory,
    config: &FedConfig,
    links: &mut [T],
    policy: &FaultPolicy,
    resume: Option<ResumePoint>,
    mut on_round: Option<&mut RoundHook<'_>>,
) -> Result<ResilientOutcome, FedError> {
    if links.len() != clients.len() {
        return Err(FedError::InvalidConfig {
            reason: format!("{} links for {} clients", links.len(), clients.len()),
        });
    }
    let min_quorum = policy.min_quorum.max(1);
    if min_quorum > clients.len() {
        return Err(FedError::InvalidConfig {
            reason: format!(
                "min_quorum {} exceeds the fleet of {}",
                min_quorum,
                clients.len()
            ),
        });
    }

    let mut harness = Harness::new(clients, factory, config)?;
    let (start_round, mut seq, mut global) = match resume {
        Some(point) => {
            if point.round >= config.rounds {
                return Err(FedError::InvalidConfig {
                    reason: format!(
                        "resume point at round {} but the run has only {} rounds",
                        point.round, config.rounds
                    ),
                });
            }
            (point.round + 1, point.seq, point.state)
        }
        None => (1, 0u64, harness.initial_state()),
    };

    let mut history = Vec::new();
    let mut events = Vec::new();
    let mut retries = 0u64;
    let mut completed = start_round.saturating_sub(1);
    let attempts = policy.retry.max_attempts.max(1);

    for round in start_round..=config.rounds {
        let participants = harness.participants(round);
        let part_ids: Vec<u32> = participants.iter().map(|&k| k as u32).collect();
        let deploy = |round: usize, steps: usize| Message::Deploy {
            round: round as u64,
            steps: steps as u64,
            participants: part_ids.clone(),
            state: global.clone(),
        };
        // First deploy wave, in fixed participant order. A send that
        // fails outright marks the slot dead for this round (the
        // collect phase records the miss).
        let mut send_failed = vec![false; clients.len()];
        for &k in &participants {
            if let Err(e) = send_message(
                &mut links[k],
                deploy(round, config.local_steps),
                COORDINATOR,
                seq,
            ) {
                events.push(RoundEvent::Retry {
                    round,
                    client: k,
                    attempt: 0,
                    reason: e.to_string(),
                });
                send_failed[k] = true;
            }
            seq += 1;
        }
        // Collect phase, same fixed order: each slot gets `attempts`
        // tries; a failed try re-deploys (re-training the slot is
        // bit-identical, so a retried update equals the lost one).
        let mut updates: Vec<ClientUpdate> = Vec::with_capacity(participants.len());
        for &k in &participants {
            let mut attempt = 0u32;
            let mut stale_budget = STALE_BUDGET;
            let collected = loop {
                if send_failed[k] {
                    send_failed[k] = false;
                    // The deploy never left: skip straight to a retry.
                    attempt += 1;
                    if attempt >= attempts {
                        break None;
                    }
                }
                match recv_update(&mut links[k], policy.deadline) {
                    Ok((got_round, got_client, loss, state)) => {
                        if got_round == round as u64 && got_client == k as u32 {
                            break Some(ClientUpdate {
                                client: k,
                                state,
                                loss,
                            });
                        }
                        if got_client != k as u32 {
                            return Err(FedError::Transport {
                                reason: format!(
                                    "link {k} delivered an update claiming client {got_client}"
                                ),
                            });
                        }
                        // An earlier round's update surfacing late
                        // (duplicate or reorder): drain and discard.
                        events.push(RoundEvent::Stale {
                            round,
                            client: k,
                            got_round,
                        });
                        if stale_budget == 0 {
                            break None;
                        }
                        stale_budget -= 1;
                    }
                    Err(RecvFailure::Fatal(e)) => return Err(e),
                    Err(RecvFailure::Slot(reason)) => {
                        events.push(RoundEvent::Retry {
                            round,
                            client: k,
                            attempt,
                            reason,
                        });
                        attempt += 1;
                        if attempt >= attempts {
                            break None;
                        }
                        retries += 1;
                        policy.retry.sleep(attempt - 1, k as u64);
                        if send_message(
                            &mut links[k],
                            deploy(round, config.local_steps),
                            COORDINATOR,
                            seq,
                        )
                        .is_err()
                        {
                            send_failed[k] = true;
                        }
                        seq += 1;
                    }
                }
            };
            match collected {
                Some(update) => updates.push(update),
                None => events.push(RoundEvent::Missed {
                    round,
                    client: k,
                    attempts: attempt.max(1),
                }),
            }
        }
        if updates.len() < min_quorum {
            return Err(FedError::QuorumLost {
                round,
                got: updates.len(),
                need: min_quorum,
            });
        }
        // Survivors only: the weighted aggregate normalizes by the
        // surviving weight sum, which *is* the deterministic reweighting
        // — same survivors, same weights, same bits.
        let refs: Vec<(&StateDict, f64)> = updates
            .iter()
            .map(|u| (&u.state, clients[u.client].weight() as f64))
            .collect();
        global = aggregate(&refs, config.aggregation)?;
        completed = round;
        if harness.should_record(round) {
            let reports = harness.eval_global(&global)?;
            history.push(RoundRecord::new(round, reports, mean_loss(&updates)));
        }
        if let Some(hook) = on_round.as_deref_mut() {
            hook(round, seq, &global)?;
        }
    }
    for link in links.iter_mut() {
        // A client that already hung up is fine — the run is over.
        let _ = send_message(link, Message::Shutdown, COORDINATOR, seq);
        seq += 1;
    }
    let per_client = harness.eval_global(&global)?;
    Ok(ResilientOutcome {
        outcome: MethodOutcome::new(Method::FedProx, per_client, history),
        events,
        retries,
        completed_rounds: completed,
    })
}

/// Why one receive attempt did not produce a usable update.
enum RecvFailure {
    /// Worth retrying the slot: timeout, frame damage, short hang-up.
    Slot(String),
    /// Not a fault-injection survivor: abort the run.
    Fatal(FedError),
}

/// Receives one frame under a deadline and parses it as a plain update.
fn recv_update<T: Transport>(
    link: &mut T,
    deadline: Duration,
) -> Result<(u64, u32, f32, StateDict), RecvFailure> {
    let frame = match link.recv_timeout(deadline) {
        Ok(frame) => frame,
        // Every injected fault surfaces here as a typed error —
        // timeouts for drops, CRC errors for corruption, `Closed` for a
        // dead peer — and all of them are slot-level, not run-level.
        Err(e @ (NetError::Timeout | NetError::Closed)) => {
            return Err(RecvFailure::Slot(e.to_string()))
        }
        Err(
            e @ (NetError::BadMagic
            | NetError::HeaderCrc
            | NetError::PayloadCrc
            | NetError::Truncated { .. }
            | NetError::Oversize { .. }
            | NetError::UnsupportedVersion { .. }),
        ) => return Err(RecvFailure::Slot(e.to_string())),
        Err(e) => return Err(RecvFailure::Fatal(net_err(e))),
    };
    let message = match Message::from_frame(&frame) {
        Ok(m) => m,
        Err(e) => return Err(RecvFailure::Slot(e.to_string())),
    };
    match message {
        Message::Update {
            round,
            client,
            loss,
            state,
        } => Ok((round, client, loss, state)),
        other => Err(RecvFailure::Fatal(FedError::Transport {
            reason: format!(
                "resilient rounds are plain-only, got message kind {}",
                other.kind()
            ),
        })),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::federation::{local_links, run_rounds_over};
    use crate::methods::test_support::{clients, factory};
    use rte_net::{ChaosConfig, ChaosTransport};

    fn chaos_links<'a>(
        clients: &'a [Client],
        factory: &'a ModelFactory,
        config: &'a FedConfig,
        chaos: &ChaosConfig,
    ) -> Vec<ChaosTransport<crate::LocalLink<'a>>> {
        local_links(clients, factory, config, None)
            .unwrap()
            .into_iter()
            .enumerate()
            .map(|(lane, link)| ChaosTransport::new(link, chaos.clone(), lane as u64).unwrap())
            .collect()
    }

    #[test]
    fn faultless_resilient_run_matches_the_plain_loop_bitwise() {
        let clients = clients(3);
        let factory = factory();
        let mut config = FedConfig::tiny();
        config.eval_every = 1;
        let mut links = local_links(&clients, &factory, &config, None).unwrap();
        let reference = run_rounds_over(
            Method::FedProx,
            &clients,
            &factory,
            &config,
            &mut links,
            None,
        )
        .unwrap();
        let mut links = local_links(&clients, &factory, &config, None).unwrap();
        let policy = FaultPolicy {
            retry: RetryPolicy::immediate(2),
            min_quorum: 3,
            ..FaultPolicy::default()
        };
        let resilient =
            run_rounds_resilient(&clients, &factory, &config, &mut links, &policy, None, None)
                .unwrap();
        assert_eq!(resilient.outcome, reference);
        assert!(resilient.events.is_empty());
        assert_eq!(resilient.retries, 0);
        assert_eq!(resilient.completed_rounds, config.rounds);
    }

    #[test]
    fn chaos_run_replays_bitwise_and_faults_are_typed() {
        let clients = clients(3);
        let factory = factory();
        let mut config = FedConfig::tiny();
        config.rounds = 4;
        let chaos = ChaosConfig {
            seed: 0xDAC2022,
            drop_p: 0.25,
            dup_p: 0.15,
            reorder_p: 0.2,
            reorder_window: 2,
            corrupt_p: 0.1,
            latency_min: 1,
            latency_max: 7,
        };
        let policy = FaultPolicy {
            retry: RetryPolicy::immediate(4),
            min_quorum: 1,
            ..FaultPolicy::default()
        };
        let run = |seed_offset: u64| {
            let chaos = ChaosConfig {
                seed: chaos.seed + seed_offset,
                ..chaos.clone()
            };
            let mut links = chaos_links(&clients, &factory, &config, &chaos);
            run_rounds_resilient(&clients, &factory, &config, &mut links, &policy, None, None)
        };
        let a = run(0).unwrap();
        let b = run(0).unwrap();
        assert_eq!(a, b, "same chaos seed → identical outcome and event log");
        assert!(
            a.retries > 0 || !a.events.is_empty(),
            "the palette never fired — raise the rates"
        );
        let c = run(1).unwrap();
        assert_ne!(
            (&a.events, a.retries),
            (&c.events, c.retries),
            "different chaos seed → different fault schedule"
        );
    }

    #[test]
    fn quorum_shortfall_is_typed_and_survivors_reweight() {
        let clients = clients(3);
        let factory = factory();
        let config = FedConfig::tiny();
        // Deterministically kill client 2's link by dropping everything.
        let lethal = ChaosConfig {
            seed: 1,
            drop_p: 1.0,
            ..ChaosConfig::default()
        };
        let benign = ChaosConfig::default();
        let mut links: Vec<ChaosTransport<crate::LocalLink<'_>>> =
            local_links(&clients, &factory, &config, None)
                .unwrap()
                .into_iter()
                .enumerate()
                .map(|(lane, link)| {
                    let cfg = if lane == 2 {
                        lethal.clone()
                    } else {
                        benign.clone()
                    };
                    ChaosTransport::new(link, cfg, lane as u64).unwrap()
                })
                .collect();
        let policy = FaultPolicy {
            retry: RetryPolicy::immediate(2),
            min_quorum: 2,
            ..FaultPolicy::default()
        };
        let run =
            run_rounds_resilient(&clients, &factory, &config, &mut links, &policy, None, None)
                .unwrap();
        // Client 2 is missed every round, and the run still completes.
        let missed: Vec<&RoundEvent> = run
            .events
            .iter()
            .filter(|e| matches!(e, RoundEvent::Missed { client: 2, .. }))
            .collect();
        assert_eq!(missed.len(), config.rounds);
        assert_eq!(run.completed_rounds, config.rounds);

        // With min_quorum = 3 the same schedule is a typed abort.
        let mut links: Vec<ChaosTransport<crate::LocalLink<'_>>> =
            local_links(&clients, &factory, &config, None)
                .unwrap()
                .into_iter()
                .enumerate()
                .map(|(lane, link)| {
                    let cfg = if lane == 2 {
                        lethal.clone()
                    } else {
                        benign.clone()
                    };
                    ChaosTransport::new(link, cfg, lane as u64).unwrap()
                })
                .collect();
        let strict = FaultPolicy {
            retry: RetryPolicy::immediate(2),
            min_quorum: 3,
            ..FaultPolicy::default()
        };
        let err =
            run_rounds_resilient(&clients, &factory, &config, &mut links, &strict, None, None)
                .unwrap_err();
        assert_eq!(
            err,
            FedError::QuorumLost {
                round: 1,
                got: 2,
                need: 3
            }
        );
    }

    #[test]
    fn resume_midway_matches_the_uninterrupted_run_bitwise() {
        let clients = clients(3);
        let factory = factory();
        let mut config = FedConfig::tiny();
        config.rounds = 4;
        let policy = FaultPolicy {
            retry: RetryPolicy::immediate(2),
            min_quorum: 3,
            ..FaultPolicy::default()
        };
        // Uninterrupted run, capturing the round-2 state via the hook.
        let mut snapshot: Option<ResumePoint> = None;
        let mut links = local_links(&clients, &factory, &config, None).unwrap();
        let mut hook = |round: usize, seq: u64, state: &StateDict| {
            if round == 2 {
                snapshot = Some(ResumePoint {
                    round,
                    seq,
                    state: state.clone(),
                });
            }
            Ok(())
        };
        let full = run_rounds_resilient(
            &clients,
            &factory,
            &config,
            &mut links,
            &policy,
            None,
            Some(&mut hook),
        )
        .unwrap();
        // Resume from the captured round-2 state: rounds 3..4 only.
        let mut links = local_links(&clients, &factory, &config, None).unwrap();
        let resumed = run_rounds_resilient(
            &clients, &factory, &config, &mut links, &policy, snapshot, None,
        )
        .unwrap();
        assert_eq!(
            resumed.outcome.per_client_auc, full.outcome.per_client_auc,
            "resumed final table must be bit-identical"
        );
        assert_eq!(
            resumed.outcome.average_auc.to_bits(),
            full.outcome.average_auc.to_bits()
        );
        assert_eq!(resumed.completed_rounds, 4);
    }

    #[test]
    fn invalid_setups_are_rejected() {
        let clients = clients(2);
        let factory = factory();
        let config = FedConfig::tiny();
        let policy = FaultPolicy {
            min_quorum: 5,
            ..FaultPolicy::default()
        };
        let mut links = local_links(&clients, &factory, &config, None).unwrap();
        assert!(matches!(
            run_rounds_resilient(&clients, &factory, &config, &mut links, &policy, None, None),
            Err(FedError::InvalidConfig { .. })
        ));
        let policy = FaultPolicy::default();
        let resume = ResumePoint {
            round: 99,
            seq: 0,
            state: rte_nn::StateDict::new(),
        };
        let mut links = local_links(&clients, &factory, &config, None).unwrap();
        assert!(matches!(
            run_rounds_resilient(
                &clients,
                &factory,
                &config,
                &mut links,
                &policy,
                Some(resume),
                None
            ),
            Err(FedError::InvalidConfig { .. })
        ));
    }
}
