//! Offline stand-in for the crates.io `proptest` crate.
//!
//! The build environment has no network access to crates.io, so this crate
//! implements the (small) subset of proptest's API the workspace's
//! property tests use, with the same surface syntax:
//!
//! - the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header,
//! - range strategies (`0u64..10_000`, `-3.0f32..3.0`, …),
//! - [`collection::vec`] and [`any`],
//! - `prop_assume!`, `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!`.
//!
//! Semantics differ from real proptest in two deliberate ways: sampling is
//! fully deterministic (seeded per test from the test's name, so runs are
//! bit-reproducible with no persistence files), and failing cases are not
//! shrunk — the failing input values are printed instead. As in real
//! proptest, a `prop_assume!` rejection resamples the case (up to
//! [`MAX_REJECTS_PER_CASE`] attempts) rather than consuming case budget.
//! Swap this crate
//! for the real one in `[workspace.dependencies]` if the registry becomes
//! reachable; the tests compile unchanged.

// The vendored stand-in is pure safe Rust (unlike the upstream crate).
#![forbid(unsafe_code)]

use std::ops::Range;

/// Runner configuration. Only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to execute per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run each property `cases` times.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` filtered the inputs; the case is skipped, not failed.
    Reject(String),
    /// A `prop_assert*!` failed.
    Fail(String),
}

/// Result type threaded through generated property bodies.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic SplitMix64 generator used for strategy sampling.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed a sampling stream. Each property derives its seed from the
    /// property name and case index, so ordering of tests never matters.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next raw 64-bit value (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A source of values for one property argument.
///
/// Unlike real proptest there is no value tree / shrinking: `sample`
/// produces the final value directly.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value: std::fmt::Debug;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
    )*};
}

signed_range_strategy!(i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                // Interpolate in f64 and reject draws that round up to the
                // excluded upper bound after narrowing (a `u` within ~6e-8
                // of 1.0 can land exactly on `end` in f32), so the range
                // stays genuinely half-open. Terminates almost surely:
                // small `u` always produces a value below `end`.
                loop {
                    let u = rng.unit_f64();
                    let span = self.end as f64 - self.start as f64;
                    let v = (self.start as f64 + u * span) as $t;
                    if v < self.end {
                        return v;
                    }
                }
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

/// Strategy wrapper produced by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Types with a canonical "arbitrary value" strategy.
pub trait Arbitrary: Sized + std::fmt::Debug {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.next_u64() as u32
    }
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy of all values of `T` (proptest's `any::<T>()`).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy for `Vec<S::Value>` with a fixed or ranged length.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        min_len: usize,
        max_len: usize,
    }

    /// Length specification: a fixed `usize` or a `Range<usize>`.
    pub trait IntoSizeRange {
        /// Convert into inclusive `(min, max)` bounds.
        fn bounds(self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(self) -> (usize, usize) {
            (self, self)
        }
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn bounds(self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end - 1)
        }
    }

    /// `vec(element, len)`: a vector whose elements are drawn from
    /// `element` and whose length is described by `len`.
    pub fn vec<S: Strategy>(element: S, len: impl IntoSizeRange) -> VecStrategy<S> {
        let (min_len, max_len) = len.bounds();
        VecStrategy {
            element,
            min_len,
            max_len,
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.min_len == self.max_len {
                self.min_len
            } else {
                let span = (self.max_len - self.min_len + 1) as u64;
                self.min_len + (rng.next_u64() % span) as usize
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything the `proptest!` macro and its callers need in scope.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy, TestCaseError, TestCaseResult, TestRng,
    };
}

/// How many times one case re-draws its inputs after a `prop_assume!`
/// rejection before the case is abandoned (mirrors real proptest's
/// rejection cap, so assumes filter draws without eating case budget).
pub const MAX_REJECTS_PER_CASE: u32 = 64;

/// FNV-1a hash of the property name: the per-test seed base, so sampling
/// is stable across runs and independent of test execution order.
pub fn seed_for(name: &str, case: u32, attempt: u32) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h ^ ((case as u64) << 32 | (attempt as u64))
}

/// Reject the current case (skip without failing) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                ::std::stringify!($cond).to_string(),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                ::std::format!($($fmt)*),
            ));
        }
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!("assertion failed: {}", ::std::stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!($($fmt)*),
            ));
        }
    };
}

/// Fail the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if !(lhs == rhs) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(::std::format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                ::std::stringify!($lhs),
                ::std::stringify!($rhs),
                lhs,
                rhs
            )));
        }
    }};
}

/// Fail the current case unless the two expressions are unequal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if !(lhs != rhs) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(::std::format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                ::std::stringify!($lhs),
                ::std::stringify!($rhs),
                lhs
            )));
        }
    }};
}

/// Define property tests. See the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $crate::proptest! {
                @one ($config)
                $(#[$meta])*
                fn $name($($arg in $strategy),+) $body
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $crate::proptest! {
                @one ($crate::ProptestConfig::default())
                $(#[$meta])*
                fn $name($($arg in $strategy),+) $body
            }
        )*
    };
    (
        @one ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+) $body:block
    ) => {
        $(#[$meta])*
        fn $name() {
            use $crate::Strategy as _;
            let config: $crate::ProptestConfig = $config;
            let mut abandoned: u32 = 0;
            for case in 0..config.cases {
                // Rejected draws (prop_assume!) are resampled with a fresh
                // seed rather than consuming the case budget, like real
                // proptest; a case is abandoned only after the cap.
                let mut ran = false;
                'attempts: for attempt in 0..$crate::MAX_REJECTS_PER_CASE {
                    let mut rng = $crate::TestRng::new($crate::seed_for(
                        ::std::stringify!($name),
                        case,
                        attempt,
                    ));
                    $(let $arg = ($strategy).sample(&mut rng);)+
                    let input_desc = ::std::format!(
                        ::std::concat!($("\n  ", ::std::stringify!($arg), " = {:?}"),+),
                        $(&$arg),+
                    );
                    let outcome = (|| -> $crate::TestCaseResult {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match outcome {
                        ::std::result::Result::Ok(()) => {
                            ran = true;
                            break 'attempts;
                        }
                        ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            ::std::panic!(
                                "property {} failed at case {}:\n{}\ninputs:{}",
                                ::std::stringify!($name),
                                case,
                                msg,
                                input_desc
                            );
                        }
                    }
                }
                if !ran {
                    abandoned += 1;
                }
            }
            ::std::assert!(
                abandoned < config.cases,
                "property {}: every case exhausted its {} assume-rejection \
                 attempts — the prop_assume! filter is too strict",
                ::std::stringify!($name),
                $crate::MAX_REJECTS_PER_CASE
            );
        }
    };
}
