//! Offline stand-in for the crates.io `criterion` crate.
//!
//! The build environment cannot reach crates.io, so this crate implements
//! the subset of criterion's API the workspace benches use:
//! [`Criterion::bench_function`], [`Bencher::iter`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros (for `harness = false`
//! bench targets).
//!
//! Measurement is deliberately simple: each benchmark is warmed up for a
//! fixed number of iterations, then timed over batches until a time budget
//! is spent, and the per-iteration mean / best batch are printed. There is
//! no statistical analysis, HTML report, or baseline comparison — swap in
//! the real crate via `[workspace.dependencies]` when the registry is
//! reachable; the benches compile unchanged.

// The vendored stand-in is pure safe Rust (unlike the upstream crate).
#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

const WARMUP_ITERS: u64 = 3;
const TARGET_TIME: Duration = Duration::from_millis(800);
const MAX_BATCHES: u32 = 50;

/// Benchmark registry and runner handle.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Run `f` as the benchmark named `id`, printing per-iteration timing.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            iters: WARMUP_ITERS,
            elapsed: Duration::ZERO,
        };
        // Warm-up: also lets the closure's setup (captured state) settle.
        f(&mut bencher);

        // Calibrate the batch size towards ~TARGET_TIME/10 per batch.
        let per_iter = bencher.elapsed.as_secs_f64() / WARMUP_ITERS as f64;
        let per_batch = TARGET_TIME.as_secs_f64() / 10.0;
        let batch = ((per_batch / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);

        let mut total = Duration::ZERO;
        let mut total_iters: u64 = 0;
        let mut best = Duration::MAX;
        let started = Instant::now();
        let mut batches = 0;
        while started.elapsed() < TARGET_TIME && batches < MAX_BATCHES {
            bencher.iters = batch;
            bencher.elapsed = Duration::ZERO;
            f(&mut bencher);
            let per = bencher.elapsed / batch as u32;
            if per < best {
                best = per;
            }
            total += bencher.elapsed;
            total_iters += batch;
            batches += 1;
        }
        let mean = total.as_secs_f64() / total_iters.max(1) as f64;
        println!(
            "bench: {id:<40} mean {:>12}  best {:>12}  ({total_iters} iters)",
            format_duration(mean),
            format_duration(best.as_secs_f64()),
        );
        self
    }
}

fn format_duration(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} us", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Timing handle passed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over the batch size chosen by the runner.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Group benchmark functions under one name (the group name is unused by
/// this stand-in beyond registration).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point for `harness = false` bench targets.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench`/`cargo test` pass harness flags (e.g.
            // `--bench`); this stand-in has no CLI and ignores them.
            $($group();)+
        }
    };
}
