//! PROS replica (Chen et al., ICCAD'20).
//!
//! The most complex of the three estimators: a strided encoder, a stack of
//! dilated-convolution residual blocks for multi-scale context, refinement
//! blocks, and sub-pixel (pixel-shuffle) upsampling — all with BatchNorm.
//! Its high non-linearity is exactly what the paper shows to be fragile
//! under decentralized training (Table 5).

use rte_tensor::conv::Conv2dSpec;
use rte_tensor::rng::Xoshiro256;
use rte_tensor::Tensor;

use crate::models::Residual;
use crate::{BatchNorm2d, Conv2d, Layer, NnError, Param, PixelShuffle, Relu, Sequential, Sigmoid};

/// Configuration of the [`Pros`] replica.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProsConfig {
    /// Number of input feature channels.
    pub in_channels: usize,
    /// Base filter count at full resolution (replica default 32; the
    /// encoder works at `2·base`).
    pub base: usize,
    /// Dilations of the context blocks (PROS uses an increasing schedule).
    pub dilations: Vec<usize>,
    /// Number of refinement residual blocks after the context stack.
    pub refinements: usize,
    /// Whether to include BatchNorm layers (`true` matches PROS).
    pub batchnorm: bool,
}

impl ProsConfig {
    /// Replica-default configuration.
    pub fn new(in_channels: usize) -> Self {
        ProsConfig {
            in_channels,
            base: 32,
            dilations: vec![1, 2, 4],
            refinements: 2,
            batchnorm: true,
        }
    }
}

/// PROS replica:
///
/// ```text
/// x → head(3×3) → down(3×3, s2) → [dilated residual]×D →
///     [refinement residual]×R → up-conv(→4·base) → pixel-shuffle(2) →
///     output(3×3) → σ
/// ```
///
/// Spatial extents must be even (one 2× down/upsampling stage).
#[derive(Debug)]
pub struct Pros {
    net: Sequential,
    config: ProsConfig,
}

impl Pros {
    /// Builds a PROS replica with weights drawn from `rng`.
    ///
    /// # Panics
    ///
    /// Panics if any configured extent is zero or `dilations` is empty.
    pub fn new(config: ProsConfig, rng: &mut Xoshiro256) -> Self {
        assert!(
            config.in_channels > 0 && config.base > 0 && !config.dilations.is_empty(),
            "Pros: invalid config"
        );
        let b = config.base;
        let wide = 2 * b;
        let mut net = Sequential::new();

        net.push(
            "head_conv",
            Conv2d::new(config.in_channels, b, 3, Conv2dSpec::same(3), rng),
        );
        if config.batchnorm {
            net.push("head_bn", BatchNorm2d::new(b));
        }
        net.push("head_act", Relu::new());

        net.push(
            "down_conv",
            Conv2d::new(
                b,
                wide,
                3,
                Conv2dSpec {
                    stride: 2,
                    padding: 1,
                    dilation: 1,
                },
                rng,
            ),
        );
        if config.batchnorm {
            net.push("down_bn", BatchNorm2d::new(wide));
        }
        net.push("down_act", Relu::new());

        for (i, &d) in config.dilations.iter().enumerate() {
            let mut inner = Sequential::new();
            inner.push(
                "conv",
                Conv2d::new(wide, wide, 3, Conv2dSpec::same_dilated(3, d), rng),
            );
            if config.batchnorm {
                inner.push("bn", BatchNorm2d::new(wide));
            }
            inner.push("act", Relu::new());
            net.push(format!("dilated{i}"), Residual::new(inner));
        }

        for i in 0..config.refinements {
            let mut inner = Sequential::new();
            inner.push("conv", Conv2d::new(wide, wide, 3, Conv2dSpec::same(3), rng));
            if config.batchnorm {
                inner.push("bn", BatchNorm2d::new(wide));
            }
            inner.push("act", Relu::new());
            net.push(format!("refine{i}"), Residual::new(inner));
        }

        // Sub-pixel upsampling: expand to 4·base channels, shuffle ×2 back
        // to full resolution with `base` channels.
        net.push(
            "up_conv",
            Conv2d::new(wide, 4 * b, 3, Conv2dSpec::same(3), rng),
        );
        net.push("up_act", Relu::new());
        net.push("up_shuffle", PixelShuffle::new(2));

        net.push(
            "output_conv",
            Conv2d::new(b, 1, 3, Conv2dSpec::same(3), rng),
        );
        net.push("output_act", Sigmoid::new());

        Pros { net, config }
    }

    /// The configuration this model was built with.
    pub fn config(&self) -> &ProsConfig {
        &self.config
    }
}

impl Layer for Pros {
    fn forward(&mut self, x: &Tensor, training: bool) -> Result<Tensor, NnError> {
        self.net.forward(x, training)
    }

    fn backward(&mut self, dy: &Tensor) -> Result<Tensor, NnError> {
        self.net.backward(dy)
    }

    fn visit_params(&mut self, prefix: &str, f: &mut dyn FnMut(String, &mut Param)) {
        self.net.visit_params(prefix, f);
    }

    fn visit_buffers(&mut self, prefix: &str, f: &mut dyn FnMut(String, &mut Tensor)) {
        self.net.visit_buffers(prefix, f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ProsConfig {
        ProsConfig {
            in_channels: 3,
            base: 4,
            dilations: vec![1, 2],
            refinements: 1,
            batchnorm: true,
        }
    }

    #[test]
    fn forward_preserves_extent() {
        let mut rng = Xoshiro256::seed_from(1);
        let mut net = Pros::new(small(), &mut rng);
        let y = net.forward(&Tensor::zeros(&[1, 3, 12, 12]), true).unwrap();
        assert_eq!(y.shape().dims(), &[1, 1, 12, 12]);
    }

    #[test]
    fn backward_matches_input_shape() {
        let mut rng = Xoshiro256::seed_from(2);
        let mut net = Pros::new(small(), &mut rng);
        net.forward(&Tensor::ones(&[2, 3, 8, 8]), true).unwrap();
        let dx = net.backward(&Tensor::ones(&[2, 1, 8, 8])).unwrap();
        assert_eq!(dx.shape().dims(), &[2, 3, 8, 8]);
    }

    #[test]
    fn has_dilated_and_refinement_blocks() {
        let mut rng = Xoshiro256::seed_from(3);
        let mut net = Pros::new(small(), &mut rng);
        let mut names = Vec::new();
        net.visit_params("", &mut |n, _| names.push(n));
        assert!(names.iter().any(|n| n.starts_with("dilated0/")));
        assert!(names.iter().any(|n| n.starts_with("dilated1/")));
        assert!(names.iter().any(|n| n.starts_with("refine0/")));
        assert!(names.contains(&"output_conv/weight".to_string()));
    }

    #[test]
    fn batchnorm_count_follows_config() {
        let mut rng = Xoshiro256::seed_from(4);
        let mut net = Pros::new(small(), &mut rng);
        let mut n = 0;
        net.visit_buffers("", &mut |_, _| n += 1);
        // head + down + 2 dilated + 1 refine = 5 BN layers × 2 buffers.
        assert_eq!(n, 10);

        let mut cfg = small();
        cfg.batchnorm = false;
        let mut net2 = Pros::new(cfg, &mut rng);
        let mut n2 = 0;
        net2.visit_buffers("", &mut |_, _| n2 += 1);
        assert_eq!(n2, 0);
    }

    #[test]
    fn deeper_than_routenet_in_layers() {
        // Sanity on the paper's complexity narrative: PROS has more
        // sequential stages than FLNet's two convolutions.
        let mut rng = Xoshiro256::seed_from(5);
        let net = Pros::new(ProsConfig::new(3), &mut rng);
        assert!(net.net.len() > 10);
    }
}
