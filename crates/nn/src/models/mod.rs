//! The model zoo: the paper's FLNet plus replicas of the two prior
//! routability estimators it compares against.
//!
//! | Model | Paper | Structure |
//! |-------|-------|-----------|
//! | [`FlNet`] | this paper, Table 1 | 2 conv layers, 9×9 kernels, no BatchNorm |
//! | [`RouteNet`] | Xie et al., ICCAD'18 | FCN with pooling, trans-conv upsampling and a shortcut; BatchNorm |
//! | [`Pros`] | Chen et al., ICCAD'20 | dilated-conv blocks, refinement blocks, sub-pixel upsampling; BatchNorm |
//!
//! All models map `(N, C, H, W)` feature maps to `(N, 1, H, W)` hotspot
//! probabilities in `[0, 1]`.

mod blocks;
mod flnet;
mod pros;
mod routenet;

pub use blocks::Residual;
pub use flnet::{FlNet, FlNetConfig};
pub use pros::{Pros, ProsConfig};
pub use routenet::{RouteNet, RouteNetConfig};

use rte_tensor::rng::Xoshiro256;

use crate::Layer;

/// Which of the three estimators to instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// The paper's federated-learning co-designed model.
    FlNet,
    /// Replica of the RouteNet estimator.
    RouteNet,
    /// Replica of the PROS estimator.
    Pros,
}

impl ModelKind {
    /// All model kinds, in the order the paper's tables present them.
    pub const ALL: [ModelKind; 3] = [ModelKind::FlNet, ModelKind::RouteNet, ModelKind::Pros];

    /// Display name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            ModelKind::FlNet => "FLNet",
            ModelKind::RouteNet => "RouteNet",
            ModelKind::Pros => "PROS",
        }
    }
}

impl std::fmt::Display for ModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Capacity scaling for the model zoo: `Paper` uses the published filter
/// counts; `Scaled` shrinks them so the full experiment matrix runs on a
/// laptop CPU in minutes while preserving relative model complexity
/// (PROS > RouteNet > FLNet).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ModelScale {
    /// Published filter counts (FLNet hidden 64, etc.).
    Paper,
    /// Reduced filter counts for CPU-scale experiments.
    #[default]
    Scaled,
}

/// Builds a model of the given kind for `in_channels` input feature maps.
///
/// The returned trait object is ready for training; its weights are drawn
/// from `rng`, so two calls with identically seeded generators produce
/// bit-identical models (required for federated initialization).
pub fn build_model(
    kind: ModelKind,
    in_channels: usize,
    scale: ModelScale,
    rng: &mut Xoshiro256,
) -> Box<dyn Layer> {
    match kind {
        ModelKind::FlNet => {
            let mut cfg = FlNetConfig::new(in_channels);
            if scale == ModelScale::Scaled {
                cfg.hidden = 16;
            }
            Box::new(FlNet::new(cfg, rng))
        }
        ModelKind::RouteNet => {
            let mut cfg = RouteNetConfig::new(in_channels);
            if scale == ModelScale::Scaled {
                cfg.base = 8;
                cfg.mid = 16;
            }
            Box::new(RouteNet::new(cfg, rng))
        }
        ModelKind::Pros => {
            let mut cfg = ProsConfig::new(in_channels);
            if scale == ModelScale::Scaled {
                cfg.base = 8;
            }
            Box::new(Pros::new(cfg, rng))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rte_tensor::Tensor;

    #[test]
    fn all_models_forward_and_backward() {
        let mut rng = Xoshiro256::seed_from(1);
        for kind in ModelKind::ALL {
            let mut model = build_model(kind, 5, ModelScale::Scaled, &mut rng);
            let x = Tensor::from_fn(&[2, 5, 16, 16], |i| (i % 7) as f32 * 0.1);
            let y = model.forward(&x, true).unwrap();
            assert_eq!(y.shape().dims(), &[2, 1, 16, 16], "{kind}");
            assert!(
                y.data().iter().all(|&v| (0.0..=1.0).contains(&v)),
                "{kind}: outputs must be probabilities"
            );
            let dx = model.backward(&Tensor::ones(&[2, 1, 16, 16])).unwrap();
            assert_eq!(dx.shape().dims(), &[2, 5, 16, 16], "{kind}");
        }
    }

    #[test]
    fn complexity_ordering_matches_paper() {
        // The paper argues PROS is the most complex, FLNet the simplest.
        let mut rng = Xoshiro256::seed_from(2);
        let mut flnet = build_model(ModelKind::FlNet, 5, ModelScale::Paper, &mut rng);
        let mut routenet = build_model(ModelKind::RouteNet, 5, ModelScale::Paper, &mut rng);
        let mut pros = build_model(ModelKind::Pros, 5, ModelScale::Paper, &mut rng);
        let (f, r, p) = (
            flnet.param_count(),
            routenet.param_count(),
            pros.param_count(),
        );
        assert!(f < r, "FLNet {f} !< RouteNet {r}");
        // RouteNet and PROS replicas are both much larger than FLNet's
        // 2-layer design in layer count; parameter-wise PROS exceeds FLNet.
        assert!(f < p, "FLNet {f} !< PROS {p}");
    }

    #[test]
    fn names_and_display() {
        assert_eq!(ModelKind::FlNet.to_string(), "FLNet");
        assert_eq!(ModelKind::RouteNet.name(), "RouteNet");
        assert_eq!(ModelKind::Pros.name(), "PROS");
    }

    #[test]
    fn deterministic_build() {
        let mut a = Xoshiro256::seed_from(5);
        let mut b = Xoshiro256::seed_from(5);
        let mut m1 = build_model(ModelKind::RouteNet, 4, ModelScale::Scaled, &mut a);
        let mut m2 = build_model(ModelKind::RouteNet, 4, ModelScale::Scaled, &mut b);
        assert_eq!(
            crate::state_dict(m1.as_mut()),
            crate::state_dict(m2.as_mut())
        );
    }
}
