//! Reusable composite blocks.

use rte_tensor::Tensor;

use crate::{Layer, NnError, Param, Sequential};

/// Residual wrapper: `y = x + inner(x)`.
///
/// The inner chain must preserve shape. Used by the PROS replica's dilated
/// and refinement blocks.
///
/// # Example
///
/// ```
/// use rte_nn::models::Residual;
/// use rte_nn::{Conv2d, Layer, Relu, Sequential};
/// use rte_tensor::conv::Conv2dSpec;
/// use rte_tensor::rng::Xoshiro256;
/// use rte_tensor::Tensor;
///
/// let mut rng = Xoshiro256::seed_from(0);
/// let mut inner = Sequential::new();
/// inner.push("conv", Conv2d::new(4, 4, 3, Conv2dSpec::same(3), &mut rng));
/// inner.push("act", Relu::new());
/// let mut block = Residual::new(inner);
/// let x = Tensor::ones(&[1, 4, 6, 6]);
/// let y = block.forward(&x, true)?;
/// assert_eq!(y.shape(), x.shape());
/// # Ok::<(), rte_nn::NnError>(())
/// ```
#[derive(Debug)]
pub struct Residual {
    inner: Sequential,
}

impl Residual {
    /// Wraps a shape-preserving chain.
    pub fn new(inner: Sequential) -> Self {
        Residual { inner }
    }
}

impl Layer for Residual {
    fn forward(&mut self, x: &Tensor, training: bool) -> Result<Tensor, NnError> {
        let y = self.inner.forward(x, training)?;
        Ok(y.add(x)?)
    }

    fn backward(&mut self, dy: &Tensor) -> Result<Tensor, NnError> {
        let dx_inner = self.inner.backward(dy)?;
        Ok(dx_inner.add(dy)?)
    }

    fn visit_params(&mut self, prefix: &str, f: &mut dyn FnMut(String, &mut Param)) {
        self.inner.visit_params(prefix, f);
    }

    fn visit_buffers(&mut self, prefix: &str, f: &mut dyn FnMut(String, &mut Tensor)) {
        self.inner.visit_buffers(prefix, f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Conv2d, Relu};
    use rte_tensor::conv::Conv2dSpec;
    use rte_tensor::rng::Xoshiro256;

    fn block(seed: u64) -> Residual {
        let mut rng = Xoshiro256::seed_from(seed);
        let mut inner = Sequential::new();
        inner.push("conv", Conv2d::new(2, 2, 3, Conv2dSpec::same(3), &mut rng));
        inner.push("act", Relu::new());
        Residual::new(inner)
    }

    #[test]
    fn identity_inner_doubles_gradient() {
        // With a zeroed conv the block is the identity; gradient must pass
        // through the skip path unchanged plus the (zero) inner path.
        let mut b = block(1);
        b.visit_params("", &mut |_, p| p.value.fill(0.0));
        let x = Tensor::from_fn(&[1, 2, 4, 4], |i| i as f32 * 0.1);
        let y = b.forward(&x, true).unwrap();
        // bias is also zero, so y == x.
        for (a, c) in x.data().iter().zip(y.data().iter()) {
            assert!((a - c).abs() < 1e-6);
        }
        let dy = Tensor::ones(&[1, 2, 4, 4]);
        let dx = b.backward(&dy).unwrap();
        // Inner path is dead (ReLU of 0 pre-activations has zero grad mask
        // only where inputs were ≤ 0; with all-zero conv output, mask is
        // false everywhere), so dx == dy exactly.
        assert_eq!(dx, dy);
    }

    #[test]
    fn gradient_check() {
        let mut b = block(2);
        let mut rng = Xoshiro256::seed_from(3);
        let x = Tensor::from_fn(&[1, 2, 4, 4], |_| rng.normal());
        let g = Tensor::from_fn(&[1, 2, 4, 4], |_| rng.normal());
        b.forward(&x, true).unwrap();
        let dx = b.backward(&g).unwrap();
        let eps = 1e-2f32;
        for i in (0..x.numel()).step_by(7) {
            let mut p = x.clone();
            p.data_mut()[i] += eps;
            let mut m = x.clone();
            m.data_mut()[i] -= eps;
            let mut bp = block(2);
            let yp = bp.forward(&p, true).unwrap();
            let mut bm = block(2);
            let ym = bm.forward(&m, true).unwrap();
            let lp: f64 = yp
                .data()
                .iter()
                .zip(g.data().iter())
                .map(|(&a, &b)| a as f64 * b as f64)
                .sum();
            let lm: f64 = ym
                .data()
                .iter()
                .zip(g.data().iter())
                .map(|(&a, &b)| a as f64 * b as f64)
                .sum();
            let numeric = ((lp - lm) / (2.0 * eps as f64)) as f32;
            assert!(
                (numeric - dx.data()[i]).abs() < 2e-2 * (1.0 + numeric.abs()),
                "dx[{i}]"
            );
        }
    }

    #[test]
    fn params_are_exposed() {
        let mut b = block(4);
        assert!(b.param_count() > 0);
    }
}
