//! FLNet — the paper's federated-learning co-designed estimator.

use rte_tensor::conv::Conv2dSpec;
use rte_tensor::rng::Xoshiro256;
use rte_tensor::Tensor;

use crate::{Conv2d, Layer, NnError, Param, Relu, Sequential, Sigmoid};

/// Configuration of [`FlNet`] (paper Table 1: two 9×9 convolutions,
/// 64 hidden filters, ReLU after the input conv, no BatchNorm).
///
/// `depth` > 2 inserts extra 9×9 hidden convolutions and exists for the
/// §4.2 robustness ablation; the paper's model is `depth = 2`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlNetConfig {
    /// Number of input feature channels.
    pub in_channels: usize,
    /// Hidden filter count (paper: 64).
    pub hidden: usize,
    /// Square kernel size (paper: 9).
    pub kernel: usize,
    /// Total number of convolution layers (paper: 2).
    pub depth: usize,
}

impl FlNetConfig {
    /// Paper-default configuration for the given input channel count.
    pub fn new(in_channels: usize) -> Self {
        FlNetConfig {
            in_channels,
            hidden: 64,
            kernel: 9,
            depth: 2,
        }
    }
}

/// FLNet (paper Table 1): `input_conv (k×k, C→H, ReLU)` followed by
/// `output_conv (k×k, H→1)` and a sigmoid that turns the map into hotspot
/// probabilities.
///
/// The deliberately small depth and absence of BatchNorm make its loss
/// surface robust to the parameter averaging of federated aggregation —
/// the paper's core §4.2 claim, reproduced by the `ablation_batchnorm` and
/// `ablation_flnet_arch` benchmark binaries.
#[derive(Debug)]
pub struct FlNet {
    net: Sequential,
    config: FlNetConfig,
}

impl FlNet {
    /// Builds an FLNet with weights drawn from `rng`.
    ///
    /// # Panics
    ///
    /// Panics if `config.depth < 2` or any extent is zero.
    pub fn new(config: FlNetConfig, rng: &mut Xoshiro256) -> Self {
        assert!(config.depth >= 2, "FlNet needs at least input+output conv");
        assert!(
            config.in_channels > 0 && config.hidden > 0 && config.kernel > 0,
            "FlNet: zero extent in config"
        );
        let spec = Conv2dSpec::same(config.kernel);
        let mut net = Sequential::new();
        net.push(
            "input_conv",
            Conv2d::new(config.in_channels, config.hidden, config.kernel, spec, rng),
        );
        net.push("input_act", Relu::new());
        for i in 0..config.depth - 2 {
            net.push(
                format!("hidden_conv{i}"),
                Conv2d::new(config.hidden, config.hidden, config.kernel, spec, rng),
            );
            net.push(format!("hidden_act{i}"), Relu::new());
        }
        net.push(
            "output_conv",
            Conv2d::new(config.hidden, 1, config.kernel, spec, rng),
        );
        net.push("output_act", Sigmoid::new());
        FlNet { net, config }
    }

    /// The configuration this model was built with.
    pub fn config(&self) -> FlNetConfig {
        self.config
    }
}

impl Layer for FlNet {
    fn forward(&mut self, x: &Tensor, training: bool) -> Result<Tensor, NnError> {
        self.net.forward(x, training)
    }

    fn backward(&mut self, dy: &Tensor) -> Result<Tensor, NnError> {
        self.net.backward(dy)
    }

    fn visit_params(&mut self, prefix: &str, f: &mut dyn FnMut(String, &mut Param)) {
        self.net.visit_params(prefix, f);
    }

    fn visit_buffers(&mut self, prefix: &str, f: &mut dyn FnMut(String, &mut Tensor)) {
        self.net.visit_buffers(prefix, f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_table1() {
        let cfg = FlNetConfig::new(9);
        assert_eq!(cfg.hidden, 64);
        assert_eq!(cfg.kernel, 9);
        assert_eq!(cfg.depth, 2);
    }

    #[test]
    fn parameter_count_is_two_convs() {
        let mut rng = Xoshiro256::seed_from(1);
        let mut net = FlNet::new(FlNetConfig::new(3), &mut rng);
        // input: 64·3·81 + 64, output: 1·64·81 + 1
        assert_eq!(net.param_count(), 64 * 3 * 81 + 64 + 64 * 81 + 1);
    }

    #[test]
    fn preserves_spatial_extent() {
        let mut rng = Xoshiro256::seed_from(2);
        let mut net = FlNet::new(
            FlNetConfig {
                in_channels: 4,
                hidden: 8,
                kernel: 9,
                depth: 2,
            },
            &mut rng,
        );
        let y = net.forward(&Tensor::zeros(&[1, 4, 17, 23]), false).unwrap();
        assert_eq!(y.shape().dims(), &[1, 1, 17, 23]);
    }

    #[test]
    fn depth_ablation_adds_hidden_layers() {
        let mut rng = Xoshiro256::seed_from(3);
        let mut cfg = FlNetConfig::new(2);
        cfg.hidden = 4;
        cfg.kernel = 3;
        cfg.depth = 4;
        let mut net = FlNet::new(cfg, &mut rng);
        let mut names = Vec::new();
        net.visit_params("", &mut |n, _| names.push(n));
        assert!(names.iter().any(|n| n.starts_with("hidden_conv0/")));
        assert!(names.iter().any(|n| n.starts_with("hidden_conv1/")));
    }

    #[test]
    fn no_batchnorm_buffers() {
        let mut rng = Xoshiro256::seed_from(4);
        let mut net = FlNet::new(FlNetConfig::new(2), &mut rng);
        let mut buffers = 0;
        net.visit_buffers("", &mut |_, _| buffers += 1);
        assert_eq!(buffers, 0, "FLNet must not contain BatchNorm state");
    }

    #[test]
    fn output_layer_name_matches_lg_partition() {
        // FedProx-LG keys on the "output_conv" prefix to decide the local
        // part; make sure the name is stable.
        let mut rng = Xoshiro256::seed_from(5);
        let mut net = FlNet::new(FlNetConfig::new(2), &mut rng);
        let mut names = Vec::new();
        net.visit_params("", &mut |n, _| names.push(n));
        assert!(names.contains(&"output_conv/weight".to_string()));
    }
}
