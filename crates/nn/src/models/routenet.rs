//! RouteNet replica (Xie et al., ICCAD'18).
//!
//! A fully-convolutional estimator with an encoder (pooling), a
//! trans-convolutional decoder and a full-resolution shortcut, using
//! BatchNorm throughout — the structural traits the paper identifies as
//! fragile under federated parameter averaging.

use rte_tensor::conv::Conv2dSpec;
use rte_tensor::rng::Xoshiro256;
use rte_tensor::Tensor;

use crate::{
    BatchNorm2d, Conv2d, ConvTranspose2d, Layer, MaxPool2d, NnError, Param, Relu, Sequential,
    Sigmoid,
};

/// Configuration of the [`RouteNet`] replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteNetConfig {
    /// Number of input feature channels.
    pub in_channels: usize,
    /// Filter count of the full-resolution stages (replica default 32).
    pub base: usize,
    /// Filter count of the encoder bottleneck (replica default 64).
    pub mid: usize,
    /// Whether to include BatchNorm layers (`true` matches RouteNet; the
    /// `ablation_batchnorm` bench flips this to isolate BatchNorm's effect
    /// on federated training).
    pub batchnorm: bool,
}

impl RouteNetConfig {
    /// Replica-default configuration.
    pub fn new(in_channels: usize) -> Self {
        RouteNetConfig {
            in_channels,
            base: 32,
            mid: 64,
            batchnorm: true,
        }
    }
}

/// RouteNet replica: `stem` (9×9 conv at full resolution) feeding both a
/// pooled encoder/decoder path and a shortcut that is added back before the
/// 5×5 output head.
///
/// ```text
/// x ─ stem ─┬─ pool ─ conv7×7 ─ conv9×9 ─ transconv ─┐
///           └────────────── shortcut ──────────── (+) ─ head ─ σ
/// ```
///
/// Spatial extents must be even (one 2× down/upsampling stage).
#[derive(Debug)]
pub struct RouteNet {
    stem: Sequential,
    encoder: Sequential,
    head: Sequential,
    config: RouteNetConfig,
    cached_skip: Option<Tensor>,
}

impl RouteNet {
    /// Builds a RouteNet replica with weights drawn from `rng`.
    ///
    /// # Panics
    ///
    /// Panics if any configured extent is zero.
    pub fn new(config: RouteNetConfig, rng: &mut Xoshiro256) -> Self {
        assert!(
            config.in_channels > 0 && config.base > 0 && config.mid > 0,
            "RouteNet: zero extent in config"
        );
        let mut stem = Sequential::new();
        stem.push(
            "conv1",
            Conv2d::new(config.in_channels, config.base, 9, Conv2dSpec::same(9), rng),
        );
        if config.batchnorm {
            stem.push("bn1", BatchNorm2d::new(config.base));
        }
        stem.push("act1", Relu::new());

        let mut encoder = Sequential::new();
        encoder.push("pool", MaxPool2d::new(2, 2));
        encoder.push(
            "conv2",
            Conv2d::new(config.base, config.mid, 7, Conv2dSpec::same(7), rng),
        );
        if config.batchnorm {
            encoder.push("bn2", BatchNorm2d::new(config.mid));
        }
        encoder.push("act2", Relu::new());
        encoder.push(
            "conv3",
            Conv2d::new(config.mid, config.base, 9, Conv2dSpec::same(9), rng),
        );
        if config.batchnorm {
            encoder.push("bn3", BatchNorm2d::new(config.base));
        }
        encoder.push("act3", Relu::new());
        encoder.push(
            "upconv",
            ConvTranspose2d::new(
                config.base,
                config.base,
                4,
                Conv2dSpec {
                    stride: 2,
                    padding: 1,
                    dilation: 1,
                },
                rng,
            ),
        );
        encoder.push("act4", Relu::new());

        let mut head = Sequential::new();
        head.push(
            "output_conv",
            Conv2d::new(config.base, 1, 5, Conv2dSpec::same(5), rng),
        );
        head.push("output_act", Sigmoid::new());

        RouteNet {
            stem,
            encoder,
            head,
            config,
            cached_skip: None,
        }
    }

    /// The configuration this model was built with.
    pub fn config(&self) -> RouteNetConfig {
        self.config
    }
}

impl Layer for RouteNet {
    fn forward(&mut self, x: &Tensor, training: bool) -> Result<Tensor, NnError> {
        let skip = self.stem.forward(x, training)?;
        let deep = self.encoder.forward(&skip, training)?;
        let merged = deep.add(&skip)?;
        self.cached_skip = Some(skip);
        self.head.forward(&merged, training)
    }

    fn backward(&mut self, dy: &Tensor) -> Result<Tensor, NnError> {
        if self.cached_skip.is_none() {
            return Err(NnError::BackwardBeforeForward {
                layer: "RouteNet".into(),
            });
        }
        let d_merged = self.head.backward(dy)?;
        // The merge was an addition: gradient flows to both branches.
        let d_skip_from_encoder = self.encoder.backward(&d_merged)?;
        let d_skip_total = d_skip_from_encoder.add(&d_merged)?;
        self.stem.backward(&d_skip_total)
    }

    fn visit_params(&mut self, prefix: &str, f: &mut dyn FnMut(String, &mut Param)) {
        self.stem.visit_params(prefix, f);
        self.encoder.visit_params(prefix, f);
        self.head.visit_params(prefix, f);
    }

    fn visit_buffers(&mut self, prefix: &str, f: &mut dyn FnMut(String, &mut Tensor)) {
        self.stem.visit_buffers(prefix, f);
        self.encoder.visit_buffers(prefix, f);
        self.head.visit_buffers(prefix, f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> RouteNetConfig {
        RouteNetConfig {
            in_channels: 3,
            base: 4,
            mid: 6,
            batchnorm: true,
        }
    }

    #[test]
    fn forward_preserves_extent() {
        let mut rng = Xoshiro256::seed_from(1);
        let mut net = RouteNet::new(small(), &mut rng);
        let y = net.forward(&Tensor::zeros(&[2, 3, 12, 12]), true).unwrap();
        assert_eq!(y.shape().dims(), &[2, 1, 12, 12]);
    }

    #[test]
    fn backward_matches_input_shape() {
        let mut rng = Xoshiro256::seed_from(2);
        let mut net = RouteNet::new(small(), &mut rng);
        net.forward(&Tensor::ones(&[1, 3, 8, 8]), true).unwrap();
        let dx = net.backward(&Tensor::ones(&[1, 1, 8, 8])).unwrap();
        assert_eq!(dx.shape().dims(), &[1, 3, 8, 8]);
    }

    #[test]
    fn backward_before_forward_errors() {
        let mut rng = Xoshiro256::seed_from(3);
        let mut net = RouteNet::new(small(), &mut rng);
        assert!(net.backward(&Tensor::zeros(&[1, 1, 8, 8])).is_err());
    }

    #[test]
    fn batchnorm_flag_controls_buffers() {
        let mut rng = Xoshiro256::seed_from(4);
        let mut with_bn = RouteNet::new(small(), &mut rng);
        let mut n_bn = 0;
        with_bn.visit_buffers("", &mut |_, _| n_bn += 1);
        assert_eq!(n_bn, 6); // 3 BN layers × (mean, var)

        let mut cfg = small();
        cfg.batchnorm = false;
        let mut without = RouteNet::new(cfg, &mut rng);
        let mut n = 0;
        without.visit_buffers("", &mut |_, _| n += 1);
        assert_eq!(n, 0);
    }

    #[test]
    fn gradient_check_through_shortcut() {
        let mut cfg = small();
        cfg.batchnorm = false; // keep the finite-difference loss deterministic
        let mut rng = Xoshiro256::seed_from(5);
        let mut net = RouteNet::new(cfg, &mut rng);
        let mut data_rng = Xoshiro256::seed_from(6);
        let x = Tensor::from_fn(&[1, 3, 8, 8], |_| data_rng.normal() * 0.5);
        let g = Tensor::from_fn(&[1, 1, 8, 8], |_| data_rng.normal());
        net.forward(&x, true).unwrap();
        let dx = net.backward(&g).unwrap();
        let eps = 2e-2f32;
        let loss_net = |xv: &Tensor| -> f64 {
            let mut rng2 = Xoshiro256::seed_from(5);
            let mut cfg2 = small();
            cfg2.batchnorm = false;
            let mut net2 = RouteNet::new(cfg2, &mut rng2);
            let y = net2.forward(xv, true).unwrap();
            y.data()
                .iter()
                .zip(g.data().iter())
                .map(|(&a, &b)| a as f64 * b as f64)
                .sum()
        };
        for i in (0..x.numel()).step_by(37) {
            let mut p = x.clone();
            p.data_mut()[i] += eps;
            let mut m = x.clone();
            m.data_mut()[i] -= eps;
            let numeric = ((loss_net(&p) - loss_net(&m)) / (2.0 * eps as f64)) as f32;
            let got = dx.data()[i];
            assert!(
                (numeric - got).abs() < 5e-2 * (1.0 + numeric.abs().max(got.abs())),
                "dx[{i}]: {numeric} vs {got}"
            );
        }
    }

    #[test]
    fn output_layer_name_present() {
        let mut rng = Xoshiro256::seed_from(7);
        let mut net = RouteNet::new(small(), &mut rng);
        let mut names = Vec::new();
        net.visit_params("", &mut |n, _| names.push(n));
        assert!(names.contains(&"output_conv/weight".to_string()));
    }
}
