//! Named parameter snapshots (state dicts).
//!
//! A [`StateDict`] is the unit of communication in the federated-learning
//! simulation: clients extract one after local training, the developer
//! aggregates them, and the aggregate is loaded back into every client's
//! model. It contains learnable parameters **and** buffers (BatchNorm
//! running statistics), matching what real FL frameworks ship.

use rte_tensor::Tensor;

use crate::{Layer, NnError};

/// An ordered list of `(path, tensor)` pairs capturing a model's full
/// state (parameters then buffers, in visit order).
pub type StateDict = Vec<(String, Tensor)>;

/// Extracts the full state of a model.
///
/// # Example
///
/// ```
/// use rte_nn::{state_dict, Conv2d, Layer};
/// use rte_tensor::conv::Conv2dSpec;
/// use rte_tensor::rng::Xoshiro256;
///
/// let mut rng = Xoshiro256::seed_from(0);
/// let mut conv = Conv2d::new(1, 2, 3, Conv2dSpec::same(3), &mut rng);
/// let sd = state_dict(&mut conv);
/// assert_eq!(sd.len(), 2); // weight + bias
/// ```
pub fn state_dict(model: &mut dyn Layer) -> StateDict {
    let mut out = StateDict::new();
    model.visit_params("", &mut |name, p| out.push((name, p.value.clone())));
    model.visit_buffers("", &mut |name, b| out.push((name, b.clone())));
    out
}

/// Loads a state dict produced by [`state_dict`] on a structurally
/// identical model.
///
/// # Errors
///
/// Returns [`NnError::StateDictMismatch`] if any entry is missing, extra,
/// misnamed or mis-shaped.
pub fn load_state_dict(model: &mut dyn Layer, sd: &StateDict) -> Result<(), NnError> {
    let mut idx = 0usize;
    let mut error: Option<NnError> = None;
    {
        let mut apply = |name: String, tensor: &mut Tensor| {
            if error.is_some() {
                return;
            }
            match sd.get(idx) {
                None => {
                    error = Some(NnError::StateDictMismatch {
                        reason: format!("missing entry for {name}"),
                    });
                }
                Some((sd_name, sd_tensor)) => {
                    if *sd_name != name {
                        error = Some(NnError::StateDictMismatch {
                            reason: format!("expected {name}, state dict has {sd_name}"),
                        });
                    } else if sd_tensor.shape() != tensor.shape() {
                        error = Some(NnError::StateDictMismatch {
                            reason: format!(
                                "{name}: shape {} != {}",
                                sd_tensor.shape(),
                                tensor.shape()
                            ),
                        });
                    } else {
                        *tensor = sd_tensor.clone();
                    }
                }
            }
            idx += 1;
        };
        model.visit_params("", &mut |name, p| apply(name, &mut p.value));
        model.visit_buffers("", &mut |name, b| apply(name, b));
    }
    if let Some(e) = error {
        return Err(e);
    }
    if idx != sd.len() {
        return Err(NnError::StateDictMismatch {
            reason: format!("state dict has {} entries, model expects {idx}", sd.len()),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BatchNorm2d, Conv2d, Sequential};
    use rte_tensor::conv::Conv2dSpec;
    use rte_tensor::rng::Xoshiro256;

    fn model(seed: u64) -> Sequential {
        let mut rng = Xoshiro256::seed_from(seed);
        let mut net = Sequential::new();
        net.push("conv", Conv2d::new(2, 4, 3, Conv2dSpec::same(3), &mut rng));
        net.push("bn", BatchNorm2d::new(4));
        net
    }

    #[test]
    fn round_trip_restores_parameters() {
        let mut a = model(1);
        let mut b = model(2);
        let sd = state_dict(&mut a);
        load_state_dict(&mut b, &sd).unwrap();
        assert_eq!(state_dict(&mut b), sd);
    }

    #[test]
    fn includes_buffers() {
        let mut m = model(3);
        let sd = state_dict(&mut m);
        let names: Vec<&str> = sd.iter().map(|(n, _)| n.as_str()).collect();
        assert!(names.contains(&"bn/running_mean"));
        assert!(names.contains(&"bn/running_var"));
        assert_eq!(sd.len(), 6); // conv w+b, bn gamma+beta, 2 buffers
    }

    #[test]
    fn rejects_truncated_dict() {
        let mut a = model(1);
        let mut sd = state_dict(&mut a);
        sd.pop();
        assert!(matches!(
            load_state_dict(&mut a, &sd),
            Err(NnError::StateDictMismatch { .. })
        ));
    }

    #[test]
    fn rejects_extra_entries() {
        let mut a = model(1);
        let mut sd = state_dict(&mut a);
        sd.push(("extra".into(), Tensor::zeros(&[1])));
        assert!(load_state_dict(&mut a, &sd).is_err());
    }

    #[test]
    fn rejects_wrong_shape() {
        let mut a = model(1);
        let mut sd = state_dict(&mut a);
        sd[0].1 = Tensor::zeros(&[1, 1, 1, 1]);
        assert!(load_state_dict(&mut a, &sd).is_err());
    }

    #[test]
    fn rejects_wrong_name() {
        let mut a = model(1);
        let mut sd = state_dict(&mut a);
        sd[0].0 = "renamed".into();
        assert!(load_state_dict(&mut a, &sd).is_err());
    }
}
