//! The [`Layer`] trait and [`Param`] storage.

use rte_tensor::Tensor;

use crate::NnError;

/// A learnable parameter: its current value and the gradient accumulated by
/// the most recent backward pass.
///
/// # Example
///
/// ```
/// use rte_nn::Param;
/// use rte_tensor::Tensor;
///
/// let mut p = Param::new(Tensor::ones(&[2, 2]));
/// p.grad.fill(0.5);
/// p.zero_grad();
/// assert_eq!(p.grad.sum(), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Current parameter value.
    pub value: Tensor,
    /// Gradient of the loss w.r.t. this parameter (same shape as `value`).
    pub grad: Tensor,
}

impl Param {
    /// Wraps an initial value with a zeroed gradient.
    pub fn new(value: Tensor) -> Self {
        let grad = Tensor::zeros(value.shape().dims());
        Param { value, grad }
    }

    /// Resets the gradient to zero.
    pub fn zero_grad(&mut self) {
        self.grad.fill(0.0);
    }
}

/// A differentiable computation stage with optional learnable parameters
/// and non-learnable buffers.
///
/// Layers cache whatever they need during [`Layer::forward`] and consume
/// that cache in [`Layer::backward`]; gradients *accumulate* into
/// [`Param::grad`], so callers zero them (via [`Layer::zero_grad`]) between
/// optimizer steps.
///
/// Buffers are non-learnable state that is still part of the model's
/// communicated state dict — concretely the BatchNorm running statistics,
/// whose behaviour under federated parameter averaging is central to the
/// paper's §4.2 argument for FLNet.
pub trait Layer {
    /// Runs the layer on `x`. `training` selects training-time behaviour
    /// (e.g. BatchNorm batch statistics vs running statistics).
    ///
    /// # Errors
    ///
    /// Returns [`NnError`] when `x` has an incompatible shape.
    fn forward(&mut self, x: &Tensor, training: bool) -> Result<Tensor, NnError>;

    /// Propagates `dy` (gradient w.r.t. this layer's output) backwards,
    /// accumulating parameter gradients and returning the gradient w.r.t.
    /// the layer's input.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BackwardBeforeForward`] when no forward pass has
    /// been cached, or a shape error when `dy` does not match the cached
    /// output.
    fn backward(&mut self, dy: &Tensor) -> Result<Tensor, NnError>;

    /// Visits all learnable parameters as `(name, param)` pairs, depth
    /// first, with `/`-joined path names (e.g. `"input_conv/weight"`).
    fn visit_params(&mut self, prefix: &str, f: &mut dyn FnMut(String, &mut Param));

    /// Visits all non-learnable buffers (default: none).
    fn visit_buffers(&mut self, _prefix: &str, _f: &mut dyn FnMut(String, &mut Tensor)) {}

    /// Zeroes every parameter gradient.
    fn zero_grad(&mut self) {
        self.visit_params("", &mut |_, p| p.zero_grad());
    }

    /// Total number of learnable scalar parameters.
    fn param_count(&mut self) -> usize {
        let mut n = 0;
        self.visit_params("", &mut |_, p| n += p.value.numel());
        n
    }
}

/// Joins a parameter path segment onto a prefix.
pub(crate) fn join_path(prefix: &str, name: &str) -> String {
    if prefix.is_empty() {
        name.to_string()
    } else {
        format!("{prefix}/{name}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_new_zeroes_grad() {
        let p = Param::new(Tensor::ones(&[3]));
        assert_eq!(p.grad.sum(), 0.0);
        assert_eq!(p.grad.shape(), p.value.shape());
    }

    #[test]
    fn join_path_behaviour() {
        assert_eq!(join_path("", "weight"), "weight");
        assert_eq!(join_path("conv1", "weight"), "conv1/weight");
    }
}
