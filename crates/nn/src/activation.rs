//! Pointwise activation layers.
//!
//! The elementwise sweeps run on the process-global
//! [`rte_tensor::simd`] arm: results are bit-identical on every arm,
//! only the wall-clock differs.

use rte_tensor::{simd, Tensor};

use crate::{Layer, NnError, Param};

/// Rectified linear unit: `y = max(0, x)`.
///
/// # Example
///
/// ```
/// use rte_nn::{Layer, Relu};
/// use rte_tensor::Tensor;
///
/// let mut relu = Relu::new();
/// let x = Tensor::from_vec(vec![-1.0, 2.0], &[1, 1, 1, 2])?;
/// let y = relu.forward(&x, true)?;
/// assert_eq!(y.data(), &[0.0, 2.0]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Relu {
    /// Forward input, cached for the backward gate `x > 0` (a dense
    /// `f32` copy vectorizes on both passes, unlike a `Vec<bool>` mask).
    cached_x: Option<Tensor>,
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Relu::default()
    }
}

impl Layer for Relu {
    fn forward(&mut self, x: &Tensor, _training: bool) -> Result<Tensor, NnError> {
        self.cached_x = Some(x.clone());
        let mut y = x.clone();
        simd::relu(y.data_mut());
        Ok(y)
    }

    fn backward(&mut self, dy: &Tensor) -> Result<Tensor, NnError> {
        let x = self
            .cached_x
            .as_ref()
            .ok_or_else(|| NnError::BackwardBeforeForward {
                layer: "Relu".into(),
            })?;
        if x.numel() != dy.numel() {
            return Err(NnError::Tensor(rte_tensor::TensorError::InvalidShape {
                reason: format!("Relu backward: dy has {} elements", dy.numel()),
            }));
        }
        let mut dx = dy.clone();
        simd::relu_backward(dx.data_mut(), x.data());
        Ok(dx)
    }

    fn visit_params(&mut self, _prefix: &str, _f: &mut dyn FnMut(String, &mut Param)) {}
}

/// Logistic sigmoid: `y = 1 / (1 + e^{-x})`.
///
/// All three paper models end in a sigmoid so the output is a per-tile
/// hotspot probability in `[0, 1]`, trained against `{0, 1}` DRC labels
/// with the squared loss of the paper's Eq. 1.
#[derive(Debug, Clone, Default)]
pub struct Sigmoid {
    cached_y: Option<Tensor>,
}

impl Sigmoid {
    /// Creates a sigmoid layer.
    pub fn new() -> Self {
        Sigmoid::default()
    }
}

impl Layer for Sigmoid {
    fn forward(&mut self, x: &Tensor, _training: bool) -> Result<Tensor, NnError> {
        // The SIMD arm's shared polynomial `exp` (not libm), so the
        // forward pass is bit-identical across arms and machines.
        let mut y = x.clone();
        simd::sigmoid(y.data_mut());
        self.cached_y = Some(y.clone());
        Ok(y)
    }

    fn backward(&mut self, dy: &Tensor) -> Result<Tensor, NnError> {
        let y = self
            .cached_y
            .as_ref()
            .ok_or_else(|| NnError::BackwardBeforeForward {
                layer: "Sigmoid".into(),
            })?;
        if y.shape() != dy.shape() {
            return Err(NnError::Tensor(rte_tensor::TensorError::ShapeMismatch {
                left: y.shape().clone(),
                right: dy.shape().clone(),
            }));
        }
        let mut dx = dy.clone();
        simd::sigmoid_backward(dx.data_mut(), y.data());
        Ok(dx)
    }

    fn visit_params(&mut self, _prefix: &str, _f: &mut dyn FnMut(String, &mut Param)) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_forward_backward() {
        let mut relu = Relu::new();
        let x = Tensor::from_vec(vec![-2.0, -0.5, 0.0, 1.5], &[4]).unwrap();
        let y = relu.forward(&x, true).unwrap();
        assert_eq!(y.data(), &[0.0, 0.0, 0.0, 1.5]);
        let dy = Tensor::ones(&[4]);
        let dx = relu.backward(&dy).unwrap();
        assert_eq!(dx.data(), &[0.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn sigmoid_values_and_gradient() {
        let mut sig = Sigmoid::new();
        let x = Tensor::from_vec(vec![0.0, 100.0, -100.0], &[3]).unwrap();
        let y = sig.forward(&x, true).unwrap();
        assert!((y.data()[0] - 0.5).abs() < 1e-6);
        assert!((y.data()[1] - 1.0).abs() < 1e-6);
        assert!(y.data()[2] < 1e-6);
        // dy/dx at 0 = 0.25; saturated ends ≈ 0.
        let dx = sig.backward(&Tensor::ones(&[3])).unwrap();
        assert!((dx.data()[0] - 0.25).abs() < 1e-6);
        assert!(dx.data()[1].abs() < 1e-6);
        assert!(dx.data()[2].abs() < 1e-6);
    }

    #[test]
    fn sigmoid_gradient_check() {
        let mut sig = Sigmoid::new();
        let x = Tensor::from_vec(vec![0.3, -1.2, 2.0], &[3]).unwrap();
        sig.forward(&x, true).unwrap();
        let dx = sig.backward(&Tensor::ones(&[3])).unwrap();
        let eps = 1e-3f32;
        for i in 0..3 {
            let f = |v: f32| 1.0 / (1.0 + (-v).exp());
            let numeric = (f(x.data()[i] + eps) - f(x.data()[i] - eps)) / (2.0 * eps);
            assert!((numeric - dx.data()[i]).abs() < 1e-3);
        }
    }

    #[test]
    fn backward_before_forward_errors() {
        let mut relu = Relu::new();
        assert!(relu.backward(&Tensor::zeros(&[1])).is_err());
        let mut sig = Sigmoid::new();
        assert!(sig.backward(&Tensor::zeros(&[1])).is_err());
    }

    #[test]
    fn activations_have_no_params() {
        let mut relu = Relu::new();
        assert_eq!(relu.param_count(), 0);
        let mut sig = Sigmoid::new();
        assert_eq!(sig.param_count(), 0);
    }
}
