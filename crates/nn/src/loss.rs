//! Loss functions.
//!
//! The paper's local objective (Eq. 1) is a squared loss on the model
//! output plus a FedProx proximal term; the data term lives here
//! ([`mse`]) and the proximal term is applied by `rte-fed` directly on
//! parameter gradients.

use rte_tensor::{Tensor, TensorError};

use crate::NnError;

/// Value and gradient of a loss: `grad` is dL/d(pred), shaped like the
/// prediction.
#[derive(Debug, Clone)]
pub struct LossOutput {
    /// Scalar loss value.
    pub value: f32,
    /// Gradient with respect to the prediction.
    pub grad: Tensor,
}

fn check_shapes(pred: &Tensor, target: &Tensor) -> Result<(), NnError> {
    if pred.shape() != target.shape() {
        return Err(NnError::Tensor(TensorError::ShapeMismatch {
            left: pred.shape().clone(),
            right: target.shape().clone(),
        }));
    }
    Ok(())
}

/// Mean squared error: `L = mean((pred − target)²)` — the data term of the
/// paper's Eq. 1.
///
/// # Errors
///
/// Returns a shape error if `pred` and `target` differ in shape.
///
/// # Example
///
/// ```
/// use rte_nn::loss::mse;
/// use rte_tensor::Tensor;
///
/// let pred = Tensor::from_vec(vec![0.0, 1.0], &[2])?;
/// let target = Tensor::from_vec(vec![0.0, 0.0], &[2])?;
/// let out = mse(&pred, &target)?;
/// assert_eq!(out.value, 0.5);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn mse(pred: &Tensor, target: &Tensor) -> Result<LossOutput, NnError> {
    check_shapes(pred, target)?;
    let n = pred.numel().max(1) as f32;
    let diff = pred.zip_with(target, |p, t| p - t);
    let value = diff.norm_sq() / n;
    let grad = diff.scale(2.0 / n);
    Ok(LossOutput { value, grad })
}

/// Binary cross entropy on probabilities in `(0, 1)`, with optional
/// positive-class weighting to counter the extreme class imbalance of DRC
/// hotspot maps (hotspots are typically a few percent of tiles).
///
/// `pos_weight = 1.0` is the unweighted BCE.
///
/// # Errors
///
/// Returns a shape error if `pred` and `target` differ in shape.
pub fn bce(pred: &Tensor, target: &Tensor, pos_weight: f32) -> Result<LossOutput, NnError> {
    check_shapes(pred, target)?;
    const EPS: f32 = 1e-7;
    let n = pred.numel().max(1) as f32;
    let mut value = 0.0f64;
    let mut grad = Tensor::zeros(pred.shape().dims());
    for i in 0..pred.numel() {
        let p = pred.data()[i].clamp(EPS, 1.0 - EPS);
        let t = target.data()[i];
        let w = if t > 0.5 { pos_weight } else { 1.0 };
        value += -(w * t * p.ln() + (1.0 - t) * (1.0 - p).ln()) as f64;
        grad.data_mut()[i] = (w * (p - t) * t + (p - t) * (1.0 - t)) / (p * (1.0 - p)) / n;
    }
    Ok(LossOutput {
        value: (value / n as f64) as f32,
        grad,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rte_tensor::rng::Xoshiro256;

    #[test]
    fn mse_zero_at_perfect_prediction() {
        let t = Tensor::from_vec(vec![0.2, 0.8, 0.5], &[3]).unwrap();
        let out = mse(&t, &t).unwrap();
        assert_eq!(out.value, 0.0);
        assert!(out.grad.data().iter().all(|&g| g == 0.0));
    }

    #[test]
    fn mse_value_and_grad() {
        let p = Tensor::from_vec(vec![1.0, 0.0], &[2]).unwrap();
        let t = Tensor::from_vec(vec![0.0, 0.0], &[2]).unwrap();
        let out = mse(&p, &t).unwrap();
        assert_eq!(out.value, 0.5);
        assert_eq!(out.grad.data(), &[1.0, 0.0]);
    }

    #[test]
    fn mse_gradient_check() {
        let mut rng = Xoshiro256::seed_from(1);
        let p = Tensor::from_fn(&[6], |_| rng.uniform());
        let t = Tensor::from_fn(&[6], |_| rng.uniform());
        let out = mse(&p, &t).unwrap();
        let eps = 1e-3f32;
        for i in 0..6 {
            let mut pp = p.clone();
            pp.data_mut()[i] += eps;
            let mut pm = p.clone();
            pm.data_mut()[i] -= eps;
            let numeric = (mse(&pp, &t).unwrap().value - mse(&pm, &t).unwrap().value) / (2.0 * eps);
            assert!((numeric - out.grad.data()[i]).abs() < 1e-3);
        }
    }

    #[test]
    fn bce_gradient_check() {
        let mut rng = Xoshiro256::seed_from(2);
        let p = Tensor::from_fn(&[6], |_| 0.1 + 0.8 * rng.uniform());
        let t = Tensor::from_fn(&[6], |i| if i % 2 == 0 { 1.0 } else { 0.0 });
        for pw in [1.0f32, 3.0] {
            let out = bce(&p, &t, pw).unwrap();
            let eps = 1e-3f32;
            for i in 0..6 {
                let mut pp = p.clone();
                pp.data_mut()[i] += eps;
                let mut pm = p.clone();
                pm.data_mut()[i] -= eps;
                let numeric = (bce(&pp, &t, pw).unwrap().value - bce(&pm, &t, pw).unwrap().value)
                    / (2.0 * eps);
                assert!(
                    (numeric - out.grad.data()[i]).abs() < 2e-3,
                    "pw {pw} i {i}: {numeric} vs {}",
                    out.grad.data()[i]
                );
            }
        }
    }

    #[test]
    fn bce_pos_weight_raises_positive_loss() {
        let p = Tensor::from_vec(vec![0.3], &[1]).unwrap();
        let t = Tensor::from_vec(vec![1.0], &[1]).unwrap();
        let l1 = bce(&p, &t, 1.0).unwrap().value;
        let l3 = bce(&p, &t, 3.0).unwrap().value;
        assert!(l3 > l1 * 2.9);
    }

    #[test]
    fn shape_mismatch_is_error() {
        let p = Tensor::zeros(&[2]);
        let t = Tensor::zeros(&[3]);
        assert!(mse(&p, &t).is_err());
        assert!(bce(&p, &t, 1.0).is_err());
    }
}
