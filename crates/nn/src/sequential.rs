//! Sequential layer composition.

use rte_tensor::Tensor;

use crate::layer::join_path;
use crate::{Layer, NnError, Param};

/// A named chain of layers executed in order.
///
/// Parameter paths are `{stage_name}/{param_name}`, so a model built as
/// `input_conv → relu → output_conv` exposes `input_conv/weight`,
/// `input_conv/bias`, `output_conv/weight`, `output_conv/bias` — the names
/// that the federated-learning personalization methods (e.g. FedProx-LG's
/// global/local split on the output layer) key on.
///
/// # Example
///
/// ```
/// use rte_nn::{Conv2d, Layer, Relu, Sequential};
/// use rte_tensor::conv::Conv2dSpec;
/// use rte_tensor::rng::Xoshiro256;
/// use rte_tensor::Tensor;
///
/// let mut rng = Xoshiro256::seed_from(0);
/// let mut net = Sequential::new();
/// net.push("conv", Conv2d::new(1, 4, 3, Conv2dSpec::same(3), &mut rng));
/// net.push("relu", Relu::new());
/// let y = net.forward(&Tensor::zeros(&[1, 1, 6, 6]), true)?;
/// assert_eq!(y.shape().dims(), &[1, 4, 6, 6]);
/// # Ok::<(), rte_nn::NnError>(())
/// ```
#[derive(Default)]
pub struct Sequential {
    stages: Vec<(String, Box<dyn Layer>)>,
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<&str> = self.stages.iter().map(|(n, _)| n.as_str()).collect();
        f.debug_struct("Sequential")
            .field("stages", &names)
            .finish()
    }
}

impl Sequential {
    /// Creates an empty chain.
    pub fn new() -> Self {
        Sequential { stages: Vec::new() }
    }

    /// Appends a named stage.
    pub fn push(&mut self, name: impl Into<String>, layer: impl Layer + 'static) {
        self.stages.push((name.into(), Box::new(layer)));
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// True when the chain has no stages.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Names of the stages, in execution order.
    pub fn stage_names(&self) -> Vec<&str> {
        self.stages.iter().map(|(n, _)| n.as_str()).collect()
    }
}

impl Layer for Sequential {
    fn forward(&mut self, x: &Tensor, training: bool) -> Result<Tensor, NnError> {
        let mut cur = x.clone();
        for (_, layer) in &mut self.stages {
            cur = layer.forward(&cur, training)?;
        }
        Ok(cur)
    }

    fn backward(&mut self, dy: &Tensor) -> Result<Tensor, NnError> {
        let mut cur = dy.clone();
        for (_, layer) in self.stages.iter_mut().rev() {
            cur = layer.backward(&cur)?;
        }
        Ok(cur)
    }

    fn visit_params(&mut self, prefix: &str, f: &mut dyn FnMut(String, &mut Param)) {
        for (name, layer) in &mut self.stages {
            layer.visit_params(&join_path(prefix, name), f);
        }
    }

    fn visit_buffers(&mut self, prefix: &str, f: &mut dyn FnMut(String, &mut Tensor)) {
        for (name, layer) in &mut self.stages {
            layer.visit_buffers(&join_path(prefix, name), f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Conv2d, Relu};
    use rte_tensor::conv::Conv2dSpec;
    use rte_tensor::rng::Xoshiro256;

    fn small_net() -> Sequential {
        let mut rng = Xoshiro256::seed_from(0);
        let mut net = Sequential::new();
        net.push("c1", Conv2d::new(1, 2, 3, Conv2dSpec::same(3), &mut rng));
        net.push("act", Relu::new());
        net.push("c2", Conv2d::new(2, 1, 3, Conv2dSpec::same(3), &mut rng));
        net
    }

    #[test]
    fn forward_backward_shapes() {
        let mut net = small_net();
        let x = Tensor::ones(&[2, 1, 5, 5]);
        let y = net.forward(&x, true).unwrap();
        assert_eq!(y.shape().dims(), &[2, 1, 5, 5]);
        let dx = net.backward(&Tensor::ones(&[2, 1, 5, 5])).unwrap();
        assert_eq!(dx.shape().dims(), &[2, 1, 5, 5]);
    }

    #[test]
    fn param_paths_are_prefixed() {
        let mut net = small_net();
        let mut names = Vec::new();
        net.visit_params("", &mut |n, _| names.push(n));
        assert_eq!(names, vec!["c1/weight", "c1/bias", "c2/weight", "c2/bias"]);
    }

    #[test]
    fn debug_lists_stage_names() {
        let net = small_net();
        let dbg = format!("{net:?}");
        assert!(dbg.contains("c1") && dbg.contains("act") && dbg.contains("c2"));
        assert_eq!(net.stage_names(), vec!["c1", "act", "c2"]);
        assert_eq!(net.len(), 3);
        assert!(!net.is_empty());
    }
}
