//! Dropout regularization.
//!
//! Not part of the three replicated estimators' published configurations,
//! but a standard extension point for downstream users fine-tuning on
//! small private datasets (exactly the paper's personalization setting,
//! where local fine-tuning on 2-9 designs can overfit).

use rte_tensor::rng::Xoshiro256;
use rte_tensor::Tensor;

use crate::{Layer, NnError, Param};

/// Inverted dropout: during training each activation is zeroed with
/// probability `p` and survivors are scaled by `1/(1-p)`, so evaluation
/// mode is a no-op.
///
/// The mask RNG is owned by the layer and seeded explicitly, keeping
/// training runs reproducible like every other stochastic component of
/// the workspace.
#[derive(Debug, Clone)]
pub struct Dropout {
    p: f32,
    rng: Xoshiro256,
    mask: Option<Vec<f32>>,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1)`.
    pub fn new(p: f32, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&p), "Dropout: p must be in [0, 1)");
        Dropout {
            p,
            rng: Xoshiro256::seed_from(seed ^ 0xD80_0D80),
            mask: None,
        }
    }

    /// The drop probability.
    pub fn probability(&self) -> f32 {
        self.p
    }
}

impl Layer for Dropout {
    fn forward(&mut self, x: &Tensor, training: bool) -> Result<Tensor, NnError> {
        if !training || self.p == 0.0 {
            self.mask = Some(vec![1.0; x.numel()]);
            return Ok(x.clone());
        }
        let keep_scale = 1.0 / (1.0 - self.p);
        let mask: Vec<f32> = (0..x.numel())
            .map(|_| {
                if self.rng.bernoulli(self.p as f64) {
                    0.0
                } else {
                    keep_scale
                }
            })
            .collect();
        let mut y = x.clone();
        for (v, &m) in y.data_mut().iter_mut().zip(mask.iter()) {
            *v *= m;
        }
        self.mask = Some(mask);
        Ok(y)
    }

    fn backward(&mut self, dy: &Tensor) -> Result<Tensor, NnError> {
        let mask = self
            .mask
            .as_ref()
            .ok_or_else(|| NnError::BackwardBeforeForward {
                layer: "Dropout".into(),
            })?;
        if mask.len() != dy.numel() {
            return Err(NnError::Tensor(rte_tensor::TensorError::InvalidShape {
                reason: format!("Dropout backward: dy has {} elements", dy.numel()),
            }));
        }
        let mut dx = dy.clone();
        for (v, &m) in dx.data_mut().iter_mut().zip(mask.iter()) {
            *v *= m;
        }
        Ok(dx)
    }

    fn visit_params(&mut self, _prefix: &str, _f: &mut dyn FnMut(String, &mut Param)) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_mode_is_identity() {
        let mut d = Dropout::new(0.5, 1);
        let x = Tensor::from_fn(&[64], |i| i as f32);
        let y = d.forward(&x, false).unwrap();
        assert_eq!(y, x);
        let dx = d.backward(&Tensor::ones(&[64])).unwrap();
        assert_eq!(dx, Tensor::ones(&[64]));
    }

    #[test]
    fn training_zeroes_about_p_and_rescales() {
        let mut d = Dropout::new(0.25, 2);
        let x = Tensor::ones(&[10_000]);
        let y = d.forward(&x, true).unwrap();
        let zeros = y.data().iter().filter(|&&v| v == 0.0).count();
        let rate = zeros as f64 / 10_000.0;
        assert!((rate - 0.25).abs() < 0.02, "drop rate {rate}");
        // Survivors are scaled to preserve the expectation.
        let survivor = y.data().iter().find(|&&v| v != 0.0).unwrap();
        assert!((survivor - 1.0 / 0.75).abs() < 1e-6);
        assert!((y.mean() - 1.0).abs() < 0.03, "mean {}", y.mean());
    }

    #[test]
    fn backward_uses_same_mask() {
        let mut d = Dropout::new(0.5, 3);
        let x = Tensor::ones(&[100]);
        let y = d.forward(&x, true).unwrap();
        let dx = d.backward(&Tensor::ones(&[100])).unwrap();
        for (a, b) in y.data().iter().zip(dx.data().iter()) {
            assert_eq!(a, b, "gradient must pass exactly where forward did");
        }
    }

    #[test]
    fn zero_probability_is_identity_even_in_training() {
        let mut d = Dropout::new(0.0, 4);
        let x = Tensor::from_fn(&[16], |i| i as f32);
        assert_eq!(d.forward(&x, true).unwrap(), x);
    }

    #[test]
    fn backward_before_forward_errors() {
        let mut d = Dropout::new(0.3, 5);
        assert!(d.backward(&Tensor::zeros(&[4])).is_err());
    }
}
