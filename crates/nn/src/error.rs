//! Error type for the neural-network framework.

use std::error::Error;
use std::fmt;

use rte_tensor::TensorError;

/// Error produced by layer, loss, optimizer or state-dict operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NnError {
    /// An underlying tensor operation failed (shape mismatch etc.).
    Tensor(TensorError),
    /// `backward` was called before `forward` cached its activations.
    BackwardBeforeForward {
        /// The layer that was misused.
        layer: String,
    },
    /// A state dict did not match the model it was loaded into.
    StateDictMismatch {
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::Tensor(e) => write!(f, "tensor error: {e}"),
            NnError::BackwardBeforeForward { layer } => {
                write!(f, "backward called before forward on layer {layer}")
            }
            NnError::StateDictMismatch { reason } => {
                write!(f, "state dict mismatch: {reason}")
            }
        }
    }
}

impl Error for NnError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NnError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for NnError {
    fn from(e: TensorError) -> Self {
        NnError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = NnError::BackwardBeforeForward {
            layer: "conv1".into(),
        };
        assert!(e.to_string().contains("conv1"));
        let e = NnError::StateDictMismatch {
            reason: "missing key".into(),
        };
        assert!(e.to_string().contains("missing key"));
    }

    #[test]
    fn tensor_error_converts_and_sources() {
        let te = TensorError::LengthMismatch {
            expected: 4,
            got: 2,
        };
        let e: NnError = te.clone().into();
        assert_eq!(e, NnError::Tensor(te));
        assert!(Error::source(&e).is_some());
    }
}
