//! Batch normalization.
//!
//! BatchNorm is central to the paper's analysis: RouteNet and PROS depend on
//! it, and its *running statistics* are part of the communicated model
//! state. Under federated parameter averaging those statistics are averaged
//! across clients with heterogeneous feature distributions, which degrades
//! convergence — the main reason the paper's FLNet deliberately contains no
//! BatchNorm (§4.2).

use rte_tensor::Tensor;

use crate::layer::join_path;
use crate::{Layer, NnError, Param};

/// Per-channel batch normalization over NCHW tensors.
///
/// Training mode normalizes with batch statistics and updates running
/// estimates; evaluation mode normalizes with the running estimates.
#[derive(Debug, Clone)]
pub struct BatchNorm2d {
    gamma: Param,
    beta: Param,
    running_mean: Tensor,
    running_var: Tensor,
    momentum: f32,
    eps: f32,
    cache: Option<BnCache>,
}

#[derive(Debug, Clone)]
struct BnCache {
    x_hat: Tensor,
    inv_std: Vec<f32>,
    training: bool,
    dims: [usize; 4],
}

impl BatchNorm2d {
    /// Creates a BatchNorm layer for `channels` feature maps with PyTorch
    /// defaults (`momentum = 0.1`, `eps = 1e-5`).
    pub fn new(channels: usize) -> Self {
        BatchNorm2d {
            gamma: Param::new(Tensor::ones(&[channels])),
            beta: Param::new(Tensor::zeros(&[channels])),
            running_mean: Tensor::zeros(&[channels]),
            running_var: Tensor::ones(&[channels]),
            momentum: 0.1,
            eps: 1e-5,
            cache: None,
        }
    }

    /// Number of normalized channels.
    pub fn channels(&self) -> usize {
        self.gamma.value.numel()
    }

    /// Current running mean (one entry per channel).
    pub fn running_mean(&self) -> &Tensor {
        &self.running_mean
    }

    /// Current running variance (one entry per channel).
    pub fn running_var(&self) -> &Tensor {
        &self.running_var
    }

    fn check_input(&self, x: &Tensor) -> Result<(), NnError> {
        if x.shape().rank() != 4 || x.dim(1) != self.channels() {
            return Err(NnError::Tensor(rte_tensor::TensorError::InvalidShape {
                reason: format!(
                    "BatchNorm2d expects (N, {}, H, W), got {}",
                    self.channels(),
                    x.shape()
                ),
            }));
        }
        Ok(())
    }
}

impl Layer for BatchNorm2d {
    fn forward(&mut self, x: &Tensor, training: bool) -> Result<Tensor, NnError> {
        self.check_input(x)?;
        let (n, c, h, w) = (x.dim(0), x.dim(1), x.dim(2), x.dim(3));
        let m = (n * h * w) as f64;
        let hw = h * w;
        let mut y = Tensor::zeros(&[n, c, h, w]);
        let mut x_hat = Tensor::zeros(&[n, c, h, w]);
        let mut inv_std = vec![0.0f32; c];
        for ci in 0..c {
            let (mean, var) = if training {
                let mut sum = 0.0f64;
                let mut sq = 0.0f64;
                for ni in 0..n {
                    let base = (ni * c + ci) * hw;
                    for &v in &x.data()[base..base + hw] {
                        sum += v as f64;
                        sq += (v as f64) * (v as f64);
                    }
                }
                let mean = sum / m;
                let var = (sq / m - mean * mean).max(0.0);
                // Update running statistics (biased variance, as PyTorch's
                // functional semantics for the normalization itself; the
                // running update uses the unbiased estimate).
                let unbiased = if m > 1.0 { var * m / (m - 1.0) } else { var };
                let rm = &mut self.running_mean.data_mut()[ci];
                *rm = (1.0 - self.momentum) * *rm + self.momentum * mean as f32;
                let rv = &mut self.running_var.data_mut()[ci];
                *rv = (1.0 - self.momentum) * *rv + self.momentum * unbiased as f32;
                (mean as f32, var as f32)
            } else {
                (
                    self.running_mean.data()[ci],
                    self.running_var.data()[ci].max(0.0),
                )
            };
            let istd = 1.0 / (var + self.eps).sqrt();
            inv_std[ci] = istd;
            let g = self.gamma.value.data()[ci];
            let b = self.beta.value.data()[ci];
            for ni in 0..n {
                let base = (ni * c + ci) * hw;
                for i in 0..hw {
                    let xh = (x.data()[base + i] - mean) * istd;
                    x_hat.data_mut()[base + i] = xh;
                    y.data_mut()[base + i] = g * xh + b;
                }
            }
        }
        self.cache = Some(BnCache {
            x_hat,
            inv_std,
            training,
            dims: [n, c, h, w],
        });
        Ok(y)
    }

    fn backward(&mut self, dy: &Tensor) -> Result<Tensor, NnError> {
        let cache = self
            .cache
            .as_ref()
            .ok_or_else(|| NnError::BackwardBeforeForward {
                layer: "BatchNorm2d".into(),
            })?;
        let [n, c, h, w] = cache.dims;
        if dy.shape().dims() != [n, c, h, w] {
            return Err(NnError::Tensor(rte_tensor::TensorError::InvalidShape {
                reason: format!("BatchNorm2d backward: dy shape {}", dy.shape()),
            }));
        }
        let hw = h * w;
        let m = (n * hw) as f64;
        let mut dx = Tensor::zeros(&[n, c, h, w]);
        for ci in 0..c {
            let g = self.gamma.value.data()[ci];
            let istd = cache.inv_std[ci];
            // Per-channel reductions.
            let mut sum_dy = 0.0f64;
            let mut sum_dy_xhat = 0.0f64;
            for ni in 0..n {
                let base = (ni * c + ci) * hw;
                for i in 0..hw {
                    let d = dy.data()[base + i] as f64;
                    sum_dy += d;
                    sum_dy_xhat += d * cache.x_hat.data()[base + i] as f64;
                }
            }
            self.gamma.value.data(); // no-op read to keep borrowck simple
            self.gamma.grad.data_mut()[ci] += sum_dy_xhat as f32;
            self.beta.grad.data_mut()[ci] += sum_dy as f32;
            let mean_dy = (sum_dy / m) as f32;
            let mean_dy_xhat = (sum_dy_xhat / m) as f32;
            for ni in 0..n {
                let base = (ni * c + ci) * hw;
                for i in 0..hw {
                    let d = dy.data()[base + i];
                    let xh = cache.x_hat.data()[base + i];
                    dx.data_mut()[base + i] = if cache.training {
                        g * istd * (d - mean_dy - xh * mean_dy_xhat)
                    } else {
                        // Eval mode treats mean/var as constants.
                        g * istd * d
                    };
                }
            }
        }
        Ok(dx)
    }

    fn visit_params(&mut self, prefix: &str, f: &mut dyn FnMut(String, &mut Param)) {
        f(join_path(prefix, "gamma"), &mut self.gamma);
        f(join_path(prefix, "beta"), &mut self.beta);
    }

    fn visit_buffers(&mut self, prefix: &str, f: &mut dyn FnMut(String, &mut Tensor)) {
        f(join_path(prefix, "running_mean"), &mut self.running_mean);
        f(join_path(prefix, "running_var"), &mut self.running_var);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rte_tensor::rng::Xoshiro256;

    fn rand_tensor(dims: &[usize], seed: u64) -> Tensor {
        let mut rng = Xoshiro256::seed_from(seed);
        Tensor::from_fn(dims, |_| rng.normal() * 2.0 + 1.0)
    }

    #[test]
    fn training_output_is_normalized() {
        let mut bn = BatchNorm2d::new(3);
        let x = rand_tensor(&[4, 3, 6, 6], 1);
        let y = bn.forward(&x, true).unwrap();
        // Per channel: mean ≈ 0, var ≈ 1 (gamma=1, beta=0 at init).
        let hw = 36;
        for c in 0..3 {
            let mut vals = Vec::new();
            for n in 0..4 {
                let base = (n * 3 + c) * hw;
                vals.extend_from_slice(&y.data()[base..base + hw]);
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 =
                vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-4, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "var {var}");
        }
    }

    #[test]
    fn running_stats_track_batch_stats() {
        let mut bn = BatchNorm2d::new(1);
        let x = Tensor::full(&[2, 1, 2, 2], 5.0);
        for _ in 0..200 {
            bn.forward(&x, true).unwrap();
        }
        // Constant input: mean → 5, var → 0.
        assert!((bn.running_mean().data()[0] - 5.0).abs() < 1e-2);
        assert!(bn.running_var().data()[0] < 1e-2);
    }

    #[test]
    fn eval_uses_running_stats() {
        let mut bn = BatchNorm2d::new(1);
        // Train on data with mean 2, then eval on zeros: output should be
        // ≈ (0 - 2)/std, not re-normalized to zero mean.
        let x = rand_tensor(&[8, 1, 4, 4], 3).map(|v| v + 1.0);
        for _ in 0..100 {
            bn.forward(&x, true).unwrap();
        }
        let y = bn.forward(&Tensor::zeros(&[1, 1, 4, 4]), false).unwrap();
        assert!(y.mean() < -0.2, "eval output should reflect running mean");
    }

    #[test]
    fn gradient_check_training_mode() {
        let mut bn = BatchNorm2d::new(2);
        let x = rand_tensor(&[2, 2, 3, 3], 5);
        let g = rand_tensor(&[2, 2, 3, 3], 6);
        let y0 = bn.forward(&x, true).unwrap();
        let _ = y0;
        let dx = bn.backward(&g).unwrap();
        let eps = 1e-2f32;
        // Fresh BN per evaluation so running stats do not leak into loss.
        let loss = |x: &Tensor| -> f64 {
            let mut bn2 = BatchNorm2d::new(2);
            let y = bn2.forward(x, true).unwrap();
            y.data()
                .iter()
                .zip(g.data().iter())
                .map(|(&a, &b)| a as f64 * b as f64)
                .sum()
        };
        for i in (0..x.numel()).step_by(5) {
            let mut p = x.clone();
            p.data_mut()[i] += eps;
            let mut m = x.clone();
            m.data_mut()[i] -= eps;
            let numeric = ((loss(&p) - loss(&m)) / (2.0 * eps as f64)) as f32;
            let got = dx.data()[i];
            assert!(
                (numeric - got).abs() < 3e-2 * (1.0 + numeric.abs()),
                "dx[{i}]: numeric {numeric} vs {got}"
            );
        }
    }

    #[test]
    fn buffers_are_exposed() {
        let mut bn = BatchNorm2d::new(4);
        let mut names = Vec::new();
        bn.visit_buffers("bn", &mut |n, _| names.push(n));
        assert_eq!(names, vec!["bn/running_mean", "bn/running_var"]);
        let mut pnames = Vec::new();
        bn.visit_params("bn", &mut |n, _| pnames.push(n));
        assert_eq!(pnames, vec!["bn/gamma", "bn/beta"]);
    }

    #[test]
    fn rejects_wrong_channel_count() {
        let mut bn = BatchNorm2d::new(3);
        assert!(bn.forward(&Tensor::zeros(&[1, 2, 4, 4]), true).is_err());
    }
}
