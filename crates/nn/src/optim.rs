//! Optimizers.
//!
//! The paper trains with Adam (lr 2e-4) plus an L2 regularization strength
//! of 1e-5; both Adam and plain SGD (with momentum) are provided. Optimizer
//! state is keyed by parameter path so it survives parameter re-loading
//! during federated rounds. The state maps are `BTreeMap`, not `HashMap`:
//! updates are applied in `visit_params` order regardless, but any code
//! that ever *iterates* the state (serialization, federated state sync,
//! debugging dumps) must see the same lexicographic order on every run
//! and platform — `rte-lint` rule L2 enforces the discipline
//! workspace-wide.
//!
//! The per-parameter update sweeps are fused kernels on the
//! process-global [`rte_tensor::simd`] arm — every arithmetic op is
//! IEEE-exact, so the update is bit-identical on every arm.

use std::collections::BTreeMap;

use rte_tensor::simd;
use rte_tensor::Tensor;

use crate::{Layer, Param};

/// A gradient-descent parameter update rule.
pub trait Optimizer {
    /// Applies one update step to every parameter of `model` using the
    /// gradients accumulated in [`Param::grad`]. Does not zero gradients.
    fn step(&mut self, model: &mut dyn Layer);

    /// Learning rate currently in effect.
    fn learning_rate(&self) -> f32;

    /// Overrides the learning rate (used by fine-tuning schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Stochastic gradient descent with optional momentum and decoupled L2
/// weight decay.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: BTreeMap<String, Tensor>,
}

impl Sgd {
    /// Creates an SGD optimizer.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive or `momentum` is not in `[0, 1)`.
    pub fn new(lr: f32, momentum: f32, weight_decay: f32) -> Self {
        assert!(lr > 0.0, "Sgd: non-positive learning rate");
        assert!((0.0..1.0).contains(&momentum), "Sgd: momentum out of range");
        Sgd {
            lr,
            momentum,
            weight_decay,
            velocity: BTreeMap::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, model: &mut dyn Layer) {
        let lr = self.lr;
        let momentum = self.momentum;
        let wd = self.weight_decay;
        let velocity = &mut self.velocity;
        model.visit_params("", &mut |name, p: &mut Param| {
            if momentum <= 0.0 {
                // Momentum-free path (the constructor validates
                // momentum ∈ [0, 1), so this is exactly the complement
                // of the historical `momentum > 0.0` velocity branch):
                // one fused sweep, no gradient clone. The expression
                // matches the unfused axpy pair below bit for bit; the
                // kernel folds the decay term only when its wd is
                // nonzero, so the historical `wd > 0.0` guard is
                // reproduced by zeroing it here.
                let wd = if wd > 0.0 { wd } else { 0.0 };
                simd::sgd_step(p.value.data_mut(), p.grad.data(), lr, wd);
                return;
            }
            let mut g = p.grad.clone();
            if wd > 0.0 {
                g.axpy(wd, &p.value).expect("grad/value shapes match");
            }
            let v = velocity
                .entry(name)
                .or_insert_with(|| Tensor::zeros(g.shape().dims()));
            v.scale_in_place(momentum);
            v.add_assign(&g).expect("velocity shape");
            p.value.axpy(-lr, v).expect("param shape");
        });
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam optimizer with L2 regularization folded into the gradient
/// (classic Adam + weight decay, matching the paper's setup).
///
/// # Example
///
/// ```
/// use rte_nn::optim::{Adam, Optimizer};
/// use rte_nn::{Conv2d, Layer};
/// use rte_tensor::conv::Conv2dSpec;
/// use rte_tensor::rng::Xoshiro256;
/// use rte_tensor::Tensor;
///
/// let mut rng = Xoshiro256::seed_from(1);
/// let mut conv = Conv2d::new(1, 1, 3, Conv2dSpec::same(3), &mut rng);
/// let mut opt = Adam::new(2e-4, 1e-5);
/// let y = conv.forward(&Tensor::ones(&[1, 1, 4, 4]), true)?;
/// conv.backward(&y)?; // pretend dL/dy = y
/// opt.step(&mut conv);
/// conv.zero_grad();
/// # Ok::<(), rte_nn::NnError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    t: u64,
    first: BTreeMap<String, Tensor>,
    second: BTreeMap<String, Tensor>,
}

impl Adam {
    /// Creates an Adam optimizer with the paper's defaults
    /// (`beta1 = 0.9`, `beta2 = 0.999`, `eps = 1e-8`).
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive.
    pub fn new(lr: f32, weight_decay: f32) -> Self {
        assert!(lr > 0.0, "Adam: non-positive learning rate");
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay,
            t: 0,
            first: BTreeMap::new(),
            second: BTreeMap::new(),
        }
    }

    /// Resets the step counter and moment estimates (used when a client
    /// restarts training from freshly deployed global parameters).
    pub fn reset_state(&mut self) {
        self.t = 0;
        self.first.clear();
        self.second.clear();
    }
}

impl Optimizer for Adam {
    fn step(&mut self, model: &mut dyn Layer) {
        self.t += 1;
        let step = simd::AdamStep {
            beta1: self.beta1,
            beta2: self.beta2,
            bias1: 1.0 - self.beta1.powi(self.t as i32),
            bias2: 1.0 - self.beta2.powi(self.t as i32),
            lr: self.lr,
            eps: self.eps,
            // The kernel folds the decay term only when nonzero,
            // reproducing the historical `wd > 0.0` guard.
            weight_decay: if self.weight_decay > 0.0 {
                self.weight_decay
            } else {
                0.0
            },
        };
        let first = &mut self.first;
        let second = &mut self.second;
        model.visit_params("", &mut |name, p: &mut Param| {
            let m = first
                .entry(name.clone())
                .or_insert_with(|| Tensor::zeros(p.grad.shape().dims()));
            let v = second
                .entry(name)
                .or_insert_with(|| Tensor::zeros(p.grad.shape().dims()));
            // One fused sweep per parameter: moment updates and the
            // bias-corrected step, no gradient clone.
            simd::adam_step(
                p.value.data_mut(),
                m.data_mut(),
                v.data_mut(),
                p.grad.data(),
                &step,
            );
        });
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::mse;
    use crate::{Conv2d, Sequential, Sigmoid};
    use rte_tensor::conv::Conv2dSpec;
    use rte_tensor::rng::Xoshiro256;

    fn tiny_model(seed: u64) -> Sequential {
        let mut rng = Xoshiro256::seed_from(seed);
        let mut net = Sequential::new();
        net.push("conv", Conv2d::new(1, 1, 3, Conv2dSpec::same(3), &mut rng));
        net.push("sig", Sigmoid::new());
        net
    }

    fn train_step(net: &mut Sequential, opt: &mut dyn Optimizer, x: &Tensor, t: &Tensor) -> f32 {
        let y = net.forward(x, true).unwrap();
        let out = mse(&y, t).unwrap();
        net.zero_grad();
        net.backward(&out.grad).unwrap();
        opt.step(net);
        out.value
    }

    #[test]
    fn sgd_reduces_loss() {
        let mut net = tiny_model(1);
        let mut opt = Sgd::new(0.5, 0.9, 0.0);
        let mut rng = Xoshiro256::seed_from(2);
        let x = Tensor::from_fn(&[4, 1, 5, 5], |_| rng.normal());
        let t = x.map(|v| if v > 0.0 { 1.0 } else { 0.0 });
        let first = train_step(&mut net, &mut opt, &x, &t);
        let mut last = first;
        for _ in 0..50 {
            last = train_step(&mut net, &mut opt, &x, &t);
        }
        assert!(last < first * 0.6, "loss {first} -> {last}");
    }

    #[test]
    fn adam_reduces_loss_faster_than_plain_sgd_small_lr() {
        let mut rng = Xoshiro256::seed_from(3);
        let x = Tensor::from_fn(&[4, 1, 5, 5], |_| rng.normal());
        let t = x.map(|v| if v > 0.0 { 1.0 } else { 0.0 });

        let mut net_adam = tiny_model(7);
        let mut adam = Adam::new(0.01, 0.0);
        let mut net_sgd = tiny_model(7);
        let mut sgd = Sgd::new(0.01, 0.0, 0.0);
        let mut l_adam = 0.0;
        let mut l_sgd = 0.0;
        for _ in 0..60 {
            l_adam = train_step(&mut net_adam, &mut adam, &x, &t);
            l_sgd = train_step(&mut net_sgd, &mut sgd, &x, &t);
        }
        assert!(l_adam < l_sgd, "adam {l_adam} vs sgd {l_sgd}");
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let mut net = tiny_model(5);
        // Zero gradient + pure decay should shrink the norm.
        let mut before = 0.0;
        net.visit_params("", &mut |_, p| before += p.value.norm_sq());
        let mut opt = Sgd::new(0.1, 0.0, 0.5);
        net.zero_grad();
        opt.step(&mut net);
        let mut after = 0.0;
        net.visit_params("", &mut |_, p| after += p.value.norm_sq());
        assert!(after < before, "{after} !< {before}");
    }

    #[test]
    fn adam_reset_state_clears_moments() {
        let mut net = tiny_model(9);
        let mut opt = Adam::new(0.01, 0.0);
        let x = Tensor::ones(&[1, 1, 4, 4]);
        let t = Tensor::zeros(&[1, 1, 4, 4]);
        train_step(&mut net, &mut opt, &x, &t);
        assert!(!opt.first.is_empty());
        opt.reset_state();
        assert!(opt.first.is_empty());
        assert_eq!(opt.t, 0);
    }

    #[test]
    fn optimizer_state_order_is_deterministic_and_bitwise_stable() {
        // Two independent runs from identical seeds must produce
        // bitwise-identical parameters, state keys, and moment tensors,
        // and the state must iterate in lexicographic key order — the
        // reason the moment maps are `BTreeMap`: anything that walks
        // them (state sync, serialization) sees one order everywhere.
        let run = || {
            let mut net = tiny_model(11);
            let mut opt = Adam::new(2e-4, 1e-5);
            let mut rng = Xoshiro256::seed_from(13);
            let x = Tensor::from_fn(&[2, 1, 5, 5], |_| rng.normal());
            let t = x.map(|v| if v > 0.0 { 1.0 } else { 0.0 });
            for _ in 0..5 {
                train_step(&mut net, &mut opt, &x, &t);
            }
            let mut params: Vec<(String, Vec<u32>)> = Vec::new();
            net.visit_params("", &mut |name, p| {
                params.push((name, p.value.data().iter().map(|v| v.to_bits()).collect()));
            });
            let keys: Vec<String> = opt.first.keys().cloned().collect();
            let moments: Vec<Vec<u32>> = opt
                .first
                .values()
                .chain(opt.second.values())
                .map(|t| t.data().iter().map(|v| v.to_bits()).collect())
                .collect();
            (params, keys, moments)
        };
        let (p1, k1, m1) = run();
        let (p2, k2, m2) = run();
        assert_eq!(p1, p2, "parameters must be bitwise identical across runs");
        assert_eq!(k2, k1);
        assert_eq!(m1, m2, "moment state must be bitwise identical across runs");
        let mut sorted = k1.clone();
        sorted.sort();
        assert_eq!(k1, sorted, "state iteration must be lexicographic");
        assert!(!k1.is_empty());
    }

    #[test]
    fn learning_rate_accessors() {
        let mut opt = Adam::new(2e-4, 1e-5);
        assert_eq!(opt.learning_rate(), 2e-4);
        opt.set_learning_rate(1e-3);
        assert_eq!(opt.learning_rate(), 1e-3);
    }
}
