//! Convolution layers.

use rte_tensor::conv::{
    conv2d, conv2d_backward, conv_transpose2d, conv_transpose2d_backward, Conv2dSpec,
};
use rte_tensor::rng::Xoshiro256;
use rte_tensor::{init, Tensor};

use crate::layer::join_path;
use crate::{Layer, NnError, Param};

/// 2-D convolution layer with bias (NCHW).
///
/// Weight layout `(C_out, C_in, KH, KW)`, Kaiming-uniform initialized.
///
/// Forward and backward lower to the `rte-tensor` batched kernels, which
/// fan out over the batch dimension under the process-global
/// [`rte_tensor::parallel`] budget; outputs and gradients are
/// bit-identical for every thread count.
///
/// # Example
///
/// ```
/// use rte_nn::{Conv2d, Layer};
/// use rte_tensor::conv::Conv2dSpec;
/// use rte_tensor::rng::Xoshiro256;
/// use rte_tensor::Tensor;
///
/// let mut rng = Xoshiro256::seed_from(1);
/// let mut conv = Conv2d::new(3, 8, 3, Conv2dSpec::same(3), &mut rng);
/// let y = conv.forward(&Tensor::zeros(&[2, 3, 8, 8]), true)?;
/// assert_eq!(y.shape().dims(), &[2, 8, 8, 8]);
/// # Ok::<(), rte_nn::NnError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Conv2d {
    weight: Param,
    bias: Param,
    spec: Conv2dSpec,
    cached_x: Option<Tensor>,
}

impl Conv2d {
    /// Creates a convolution with square `kernel` and the given geometry.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        spec: Conv2dSpec,
        rng: &mut Xoshiro256,
    ) -> Self {
        let fan_in = in_channels * kernel * kernel;
        let weight =
            init::kaiming_uniform(&[out_channels, in_channels, kernel, kernel], fan_in, rng);
        let bias = init::conv_bias(&[out_channels], fan_in, rng);
        Conv2d {
            weight: Param::new(weight),
            bias: Param::new(bias),
            spec,
            cached_x: None,
        }
    }

    /// The convolution geometry.
    pub fn spec(&self) -> Conv2dSpec {
        self.spec
    }

    /// Immutable view of the weight parameter.
    pub fn weight(&self) -> &Param {
        &self.weight
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, x: &Tensor, _training: bool) -> Result<Tensor, NnError> {
        let y = conv2d(x, &self.weight.value, Some(&self.bias.value), self.spec)?;
        self.cached_x = Some(x.clone());
        Ok(y)
    }

    fn backward(&mut self, dy: &Tensor) -> Result<Tensor, NnError> {
        let x = self
            .cached_x
            .as_ref()
            .ok_or_else(|| NnError::BackwardBeforeForward {
                layer: "Conv2d".into(),
            })?;
        let grads = conv2d_backward(x, &self.weight.value, dy, self.spec)?;
        self.weight.grad.add_assign(&grads.dw)?;
        self.bias.grad.add_assign(&grads.db)?;
        Ok(grads.dx)
    }

    fn visit_params(&mut self, prefix: &str, f: &mut dyn FnMut(String, &mut Param)) {
        f(join_path(prefix, "weight"), &mut self.weight);
        f(join_path(prefix, "bias"), &mut self.bias);
    }
}

/// Transposed 2-D convolution layer (learned upsampling) with bias.
///
/// Weight layout `(C_in, C_out, KH, KW)` as in PyTorch's `ConvTranspose2d`.
#[derive(Debug, Clone)]
pub struct ConvTranspose2d {
    weight: Param,
    bias: Param,
    spec: Conv2dSpec,
    cached_x: Option<Tensor>,
}

impl ConvTranspose2d {
    /// Creates a transposed convolution with square `kernel`.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        spec: Conv2dSpec,
        rng: &mut Xoshiro256,
    ) -> Self {
        let fan_in = in_channels * kernel * kernel;
        let weight =
            init::kaiming_uniform(&[in_channels, out_channels, kernel, kernel], fan_in, rng);
        let bias = init::conv_bias(&[out_channels], fan_in, rng);
        ConvTranspose2d {
            weight: Param::new(weight),
            bias: Param::new(bias),
            spec,
            cached_x: None,
        }
    }

    /// The convolution geometry.
    pub fn spec(&self) -> Conv2dSpec {
        self.spec
    }
}

impl Layer for ConvTranspose2d {
    fn forward(&mut self, x: &Tensor, _training: bool) -> Result<Tensor, NnError> {
        let y = conv_transpose2d(x, &self.weight.value, Some(&self.bias.value), self.spec)?;
        self.cached_x = Some(x.clone());
        Ok(y)
    }

    fn backward(&mut self, dy: &Tensor) -> Result<Tensor, NnError> {
        let x = self
            .cached_x
            .as_ref()
            .ok_or_else(|| NnError::BackwardBeforeForward {
                layer: "ConvTranspose2d".into(),
            })?;
        let grads = conv_transpose2d_backward(x, &self.weight.value, dy, self.spec)?;
        self.weight.grad.add_assign(&grads.dw)?;
        self.bias.grad.add_assign(&grads.db)?;
        Ok(grads.dx)
    }

    fn visit_params(&mut self, prefix: &str, f: &mut dyn FnMut(String, &mut Param)) {
        f(join_path(prefix, "weight"), &mut self.weight);
        f(join_path(prefix, "bias"), &mut self.bias);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv2d_shapes_and_params() {
        let mut rng = Xoshiro256::seed_from(0);
        let mut conv = Conv2d::new(4, 16, 3, Conv2dSpec::same(3), &mut rng);
        let x = Tensor::zeros(&[2, 4, 10, 10]);
        let y = conv.forward(&x, true).unwrap();
        assert_eq!(y.shape().dims(), &[2, 16, 10, 10]);
        assert_eq!(conv.param_count(), 16 * 4 * 9 + 16);
    }

    #[test]
    fn conv2d_backward_requires_forward() {
        let mut rng = Xoshiro256::seed_from(0);
        let mut conv = Conv2d::new(1, 1, 3, Conv2dSpec::same(3), &mut rng);
        let dy = Tensor::zeros(&[1, 1, 4, 4]);
        assert!(matches!(
            conv.backward(&dy),
            Err(NnError::BackwardBeforeForward { .. })
        ));
    }

    #[test]
    fn conv2d_gradients_accumulate_until_zeroed() {
        let mut rng = Xoshiro256::seed_from(3);
        let mut conv = Conv2d::new(1, 2, 3, Conv2dSpec::same(3), &mut rng);
        let x = Tensor::ones(&[1, 1, 4, 4]);
        let dy = Tensor::ones(&[1, 2, 4, 4]);
        conv.forward(&x, true).unwrap();
        conv.backward(&dy).unwrap();
        let g1 = conv.weight().grad.clone();
        conv.forward(&x, true).unwrap();
        conv.backward(&dy).unwrap();
        let g2 = conv.weight().grad.clone();
        assert_eq!(g2, g1.scale(2.0));
        conv.zero_grad();
        assert_eq!(conv.weight().grad.sum(), 0.0);
    }

    #[test]
    fn transpose_upsamples_by_stride() {
        let mut rng = Xoshiro256::seed_from(5);
        let spec = Conv2dSpec {
            stride: 2,
            padding: 1,
            dilation: 1,
        };
        let mut up = ConvTranspose2d::new(8, 4, 4, spec, &mut rng);
        let x = Tensor::zeros(&[1, 8, 6, 6]);
        let y = up.forward(&x, true).unwrap();
        assert_eq!(y.shape().dims(), &[1, 4, 12, 12]);
        let dx = up.backward(&Tensor::zeros(&[1, 4, 12, 12])).unwrap();
        assert_eq!(dx.shape().dims(), &[1, 8, 6, 6]);
    }

    #[test]
    fn layer_results_are_thread_invariant() {
        // The layer inherits the tensor crate's global parallelism; the
        // forward activations and all accumulated gradients must not
        // change by a single bit when the kernels run multi-threaded.
        use rte_tensor::parallel::{self, Parallelism};
        let run = || {
            let mut rng = Xoshiro256::seed_from(11);
            let mut conv = Conv2d::new(3, 8, 5, Conv2dSpec::same(5), &mut rng);
            let x = Tensor::from_fn(&[6, 3, 12, 12], |i| (i % 17) as f32 * 0.1 - 0.8);
            let y = conv.forward(&x, true).unwrap();
            let dy = Tensor::from_fn(y.shape().dims(), |i| (i % 13) as f32 * 0.05 - 0.3);
            let dx = conv.backward(&dy).unwrap();
            (y, dx, conv.weight().grad.clone())
        };
        let before = parallel::global();
        let serial = run();
        parallel::set_global(Parallelism::new(4));
        let threaded = run();
        parallel::set_global(before);
        assert_eq!(serial.0, threaded.0, "forward");
        assert_eq!(serial.1, threaded.1, "dx");
        assert_eq!(serial.2, threaded.2, "dw");
    }

    #[test]
    fn visit_params_names() {
        let mut rng = Xoshiro256::seed_from(7);
        let mut conv = Conv2d::new(1, 1, 3, Conv2dSpec::same(3), &mut rng);
        let mut names = Vec::new();
        conv.visit_params("layer0", &mut |n, _| names.push(n));
        assert_eq!(names, vec!["layer0/weight", "layer0/bias"]);
    }
}
