//! Sub-pixel upsampling (pixel shuffle).

use rte_tensor::conv::{pixel_shuffle, pixel_unshuffle};
use rte_tensor::Tensor;

use crate::{Layer, NnError, Param};

/// Pixel-shuffle layer: `(N, C·r², H, W) → (N, C, H·r, W·r)`.
///
/// This is the upsampling primitive of the PROS replica's sub-pixel
/// upsampling blocks; being a pure permutation its backward pass is the
/// inverse shuffle.
///
/// # Example
///
/// ```
/// use rte_nn::{Layer, PixelShuffle};
/// use rte_tensor::Tensor;
///
/// let mut up = PixelShuffle::new(2);
/// let y = up.forward(&Tensor::zeros(&[1, 8, 4, 4]), true)?;
/// assert_eq!(y.shape().dims(), &[1, 2, 8, 8]);
/// # Ok::<(), rte_nn::NnError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PixelShuffle {
    factor: usize,
    saw_forward: bool,
}

impl PixelShuffle {
    /// Creates a pixel-shuffle layer with upscale factor `factor`.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is zero.
    pub fn new(factor: usize) -> Self {
        assert!(factor > 0, "PixelShuffle: zero factor");
        PixelShuffle {
            factor,
            saw_forward: false,
        }
    }

    /// The upscale factor.
    pub fn factor(&self) -> usize {
        self.factor
    }
}

impl Layer for PixelShuffle {
    fn forward(&mut self, x: &Tensor, _training: bool) -> Result<Tensor, NnError> {
        let y = pixel_shuffle(x, self.factor)?;
        self.saw_forward = true;
        Ok(y)
    }

    fn backward(&mut self, dy: &Tensor) -> Result<Tensor, NnError> {
        if !self.saw_forward {
            return Err(NnError::BackwardBeforeForward {
                layer: "PixelShuffle".into(),
            });
        }
        Ok(pixel_unshuffle(dy, self.factor)?)
    }

    fn visit_params(&mut self, _prefix: &str, _f: &mut dyn FnMut(String, &mut Param)) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use rte_tensor::rng::Xoshiro256;

    #[test]
    fn forward_backward_round_trip() {
        let mut rng = Xoshiro256::seed_from(1);
        let x = Tensor::from_fn(&[2, 4, 3, 3], |_| rng.normal());
        let mut layer = PixelShuffle::new(2);
        let y = layer.forward(&x, true).unwrap();
        let dx = layer.backward(&y).unwrap();
        assert_eq!(dx, x);
    }

    #[test]
    fn backward_before_forward_errors() {
        let mut layer = PixelShuffle::new(2);
        assert!(layer.backward(&Tensor::zeros(&[1, 1, 2, 2])).is_err());
    }
}
