//! State-dict persistence.
//!
//! A minimal, dependency-free binary format for saving trained models
//! (e.g. the FedProx global model a developer would ship to clients) and
//! loading them back. Little-endian, versioned:
//!
//! ```text
//! magic  b"RTESD1\0\0"           (8 bytes)
//! count  u64                     number of entries
//! entry: name_len u64, name utf-8 bytes,
//!        rank u64, dims u64 × rank,
//!        data f32-le × numel
//! ```

use std::io::{self, Read, Write};

use rte_tensor::Tensor;

use crate::{NnError, StateDict};

const MAGIC: &[u8; 8] = b"RTESD1\0\0";

/// Writes a state dict to `writer` (pass `&mut file` — any `io::Write`
/// works by value or by mutable reference).
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn write_state_dict<W: Write>(mut writer: W, sd: &StateDict) -> io::Result<()> {
    writer.write_all(MAGIC)?;
    writer.write_all(&(sd.len() as u64).to_le_bytes())?;
    for (name, tensor) in sd {
        let name_bytes = name.as_bytes();
        writer.write_all(&(name_bytes.len() as u64).to_le_bytes())?;
        writer.write_all(name_bytes)?;
        let dims = tensor.shape().dims();
        writer.write_all(&(dims.len() as u64).to_le_bytes())?;
        for &d in dims {
            writer.write_all(&(d as u64).to_le_bytes())?;
        }
        for &v in tensor.data() {
            writer.write_all(&v.to_le_bytes())?;
        }
    }
    Ok(())
}

fn read_u64<R: Read>(reader: &mut R) -> io::Result<u64> {
    let mut buf = [0u8; 8];
    reader.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

/// Reads a state dict written by [`write_state_dict`] (pass `&mut file` —
/// any `io::Read` works by value or by mutable reference).
///
/// # Errors
///
/// Returns [`NnError::StateDictMismatch`] for format violations, wrapped
/// I/O errors as `io::Error` via the `Result`'s error conversion at the
/// call site is not possible here, so I/O problems are reported as
/// `StateDictMismatch` with the underlying message.
pub fn read_state_dict<R: Read>(mut reader: R) -> Result<StateDict, NnError> {
    let fail = |reason: String| NnError::StateDictMismatch { reason };
    let mut magic = [0u8; 8];
    reader
        .read_exact(&mut magic)
        .map_err(|e| fail(format!("reading magic: {e}")))?;
    if &magic != MAGIC {
        return Err(fail("bad magic: not an RTESD1 state dict".into()));
    }
    let count = read_u64(&mut reader).map_err(|e| fail(format!("reading count: {e}")))?;
    // Defensive cap: no model in this workspace has more than a few
    // hundred entries; a corrupt count must not trigger a huge allocation.
    if count > 1 << 20 {
        return Err(fail(format!("implausible entry count {count}")));
    }
    let mut sd = StateDict::with_capacity(count as usize);
    for i in 0..count {
        let name_len =
            read_u64(&mut reader).map_err(|e| fail(format!("entry {i} name len: {e}")))? as usize;
        if name_len > 1 << 16 {
            return Err(fail(format!(
                "entry {i}: implausible name length {name_len}"
            )));
        }
        let mut name_bytes = vec![0u8; name_len];
        reader
            .read_exact(&mut name_bytes)
            .map_err(|e| fail(format!("entry {i} name: {e}")))?;
        let name = String::from_utf8(name_bytes)
            .map_err(|e| fail(format!("entry {i} name not utf-8: {e}")))?;
        let rank =
            read_u64(&mut reader).map_err(|e| fail(format!("entry {i} rank: {e}")))? as usize;
        if rank > 8 {
            return Err(fail(format!("entry {i}: implausible rank {rank}")));
        }
        let mut dims = Vec::with_capacity(rank);
        for d in 0..rank {
            let dim = read_u64(&mut reader).map_err(|e| fail(format!("entry {i} dim {d}: {e}")))?
                as usize;
            dims.push(dim);
        }
        let numel: usize = dims.iter().product();
        if numel > 1 << 28 {
            return Err(fail(format!(
                "entry {i}: implausible element count {numel}"
            )));
        }
        let mut data = Vec::with_capacity(numel);
        let mut buf = [0u8; 4];
        for _ in 0..numel {
            reader
                .read_exact(&mut buf)
                .map_err(|e| fail(format!("entry {i} data: {e}")))?;
            data.push(f32::from_le_bytes(buf));
        }
        let tensor = Tensor::from_vec(data, &dims).map_err(NnError::Tensor)?;
        sd.push((name, tensor));
    }
    Ok(sd)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{FlNet, FlNetConfig};
    use crate::state_dict;
    use rte_tensor::rng::Xoshiro256;

    fn sample_dict() -> StateDict {
        let mut rng = Xoshiro256::seed_from(1);
        let mut model = FlNet::new(
            FlNetConfig {
                in_channels: 2,
                hidden: 4,
                kernel: 3,
                depth: 2,
            },
            &mut rng,
        );
        state_dict(&mut model)
    }

    #[test]
    fn round_trip_preserves_everything() {
        let sd = sample_dict();
        let mut buf = Vec::new();
        write_state_dict(&mut buf, &sd).unwrap();
        let loaded = read_state_dict(buf.as_slice()).unwrap();
        assert_eq!(sd, loaded);
    }

    #[test]
    fn empty_dict_round_trips() {
        let sd = StateDict::new();
        let mut buf = Vec::new();
        write_state_dict(&mut buf, &sd).unwrap();
        assert_eq!(read_state_dict(buf.as_slice()).unwrap(), sd);
    }

    #[test]
    fn bad_magic_rejected() {
        let err = read_state_dict(&b"NOTMAGIC\0\0\0\0\0\0\0\0"[..]).unwrap_err();
        assert!(err.to_string().contains("magic"));
    }

    #[test]
    fn truncated_stream_rejected() {
        let sd = sample_dict();
        let mut buf = Vec::new();
        write_state_dict(&mut buf, &sd).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(read_state_dict(buf.as_slice()).is_err());
    }

    #[test]
    fn corrupt_count_rejected_without_huge_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&u64::MAX.to_le_bytes());
        assert!(read_state_dict(buf.as_slice()).is_err());
    }

    #[test]
    fn loaded_dict_drives_identical_model() {
        let mut rng = Xoshiro256::seed_from(2);
        let cfg = FlNetConfig {
            in_channels: 2,
            hidden: 4,
            kernel: 3,
            depth: 2,
        };
        let mut trained = FlNet::new(cfg, &mut rng);
        let sd = state_dict(&mut trained);
        let mut buf = Vec::new();
        write_state_dict(&mut buf, &sd).unwrap();
        let loaded = read_state_dict(buf.as_slice()).unwrap();
        let mut fresh = FlNet::new(cfg, &mut Xoshiro256::seed_from(99));
        crate::load_state_dict(&mut fresh, &loaded).unwrap();
        use crate::Layer;
        let x = rte_tensor::Tensor::ones(&[1, 2, 6, 6]);
        assert_eq!(
            trained.forward(&x, false).unwrap(),
            fresh.forward(&x, false).unwrap()
        );
    }
}
