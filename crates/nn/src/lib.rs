//! Minimal CNN framework and the model zoo of the decentralized
//! routability estimation reproduction.
//!
//! The crate provides exactly what the paper's three estimators need:
//!
//! - [`Layer`]: the forward/backward building block trait, with named
//!   [`Param`]s (learnable) and buffers (non-learnable state such as
//!   BatchNorm running statistics — which *are* communicated in federated
//!   aggregation, a detail the paper's §4.2 analysis hinges on),
//! - layers: [`Conv2d`], [`ConvTranspose2d`], [`BatchNorm2d`], [`Relu`],
//!   [`Sigmoid`], [`MaxPool2d`], [`PixelShuffle`], [`Sequential`],
//! - [`loss`]: MSE (the paper's Eq. 1 data term) and BCE,
//! - [`optim`]: Adam (the paper's optimizer) and SGD, both with L2
//!   regularization,
//! - [`models`]: **FLNet** (Table 1), a **RouteNet** replica and a **PROS**
//!   replica,
//! - [`state_dict`] / [`load_state_dict`]: ordered named parameter
//!   snapshots, the unit of communication in federated learning.
//!
//! # Example
//!
//! ```
//! use rte_nn::models::{FlNet, FlNetConfig};
//! use rte_nn::Layer;
//! use rte_tensor::{rng::Xoshiro256, Tensor};
//!
//! let mut rng = Xoshiro256::seed_from(0);
//! let mut net = FlNet::new(FlNetConfig::new(4), &mut rng);
//! let x = Tensor::zeros(&[1, 4, 16, 16]);
//! let y = net.forward(&x, false)?;
//! assert_eq!(y.shape().dims(), &[1, 1, 16, 16]);
//! # Ok::<(), rte_nn::NnError>(())
//! ```

// Pure safe Rust; all workspace `unsafe` lives in `rte_tensor::simd`
// (rte-lint rule L1 enforces this).
#![forbid(unsafe_code)]

mod activation;
mod batchnorm;
mod conv2d;
mod dropout;
mod error;
mod layer;
pub mod loss;
pub mod models;
pub mod optim;
mod pixelshuffle;
mod pooling;
mod sequential;
pub mod serialize;
mod state;

pub use activation::{Relu, Sigmoid};
pub use batchnorm::BatchNorm2d;
pub use conv2d::{Conv2d, ConvTranspose2d};
pub use dropout::Dropout;
pub use error::NnError;
pub use layer::{Layer, Param};
pub use pixelshuffle::PixelShuffle;
pub use pooling::MaxPool2d;
pub use sequential::Sequential;
pub use state::{load_state_dict, state_dict, StateDict};
