//! Pooling layers.

use rte_tensor::conv::{max_pool2d, max_pool2d_backward, MaxPoolOutput};
use rte_tensor::Tensor;

use crate::{Layer, NnError, Param};

/// Max pooling layer with square window and stride (no padding), as used by
/// the RouteNet replica's downsampling stage.
///
/// # Example
///
/// ```
/// use rte_nn::{Layer, MaxPool2d};
/// use rte_tensor::Tensor;
///
/// let mut pool = MaxPool2d::new(2, 2);
/// let y = pool.forward(&Tensor::zeros(&[1, 3, 8, 8]), true)?;
/// assert_eq!(y.shape().dims(), &[1, 3, 4, 4]);
/// # Ok::<(), rte_nn::NnError>(())
/// ```
#[derive(Debug, Clone)]
pub struct MaxPool2d {
    kernel: usize,
    stride: usize,
    cache: Option<(Vec<usize>, MaxPoolOutput)>,
}

impl MaxPool2d {
    /// Creates a max-pool layer.
    ///
    /// # Panics
    ///
    /// Panics if `kernel` or `stride` is zero.
    pub fn new(kernel: usize, stride: usize) -> Self {
        assert!(kernel > 0 && stride > 0, "MaxPool2d: zero kernel/stride");
        MaxPool2d {
            kernel,
            stride,
            cache: None,
        }
    }
}

impl Layer for MaxPool2d {
    fn forward(&mut self, x: &Tensor, _training: bool) -> Result<Tensor, NnError> {
        let out = max_pool2d(x, self.kernel, self.stride)?;
        let y = out.y.clone();
        self.cache = Some((x.shape().dims().to_vec(), out));
        Ok(y)
    }

    fn backward(&mut self, dy: &Tensor) -> Result<Tensor, NnError> {
        let (dims, out) = self
            .cache
            .as_ref()
            .ok_or_else(|| NnError::BackwardBeforeForward {
                layer: "MaxPool2d".into(),
            })?;
        Ok(max_pool2d_backward(dims, out, dy)?)
    }

    fn visit_params(&mut self, _prefix: &str, _f: &mut dyn FnMut(String, &mut Param)) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_halves_extent() {
        let mut pool = MaxPool2d::new(2, 2);
        let x = Tensor::from_fn(&[1, 1, 4, 4], |i| i as f32);
        let y = pool.forward(&x, true).unwrap();
        assert_eq!(y.shape().dims(), &[1, 1, 2, 2]);
        // Row-major: max of each 2×2 block.
        assert_eq!(y.data(), &[5.0, 7.0, 13.0, 15.0]);
    }

    #[test]
    fn backward_routes_to_argmax() {
        let mut pool = MaxPool2d::new(2, 2);
        let x = Tensor::from_fn(&[1, 1, 4, 4], |i| i as f32);
        pool.forward(&x, true).unwrap();
        let dy = Tensor::ones(&[1, 1, 2, 2]);
        let dx = pool.backward(&dy).unwrap();
        assert_eq!(dx.sum(), 4.0);
        assert_eq!(dx.at(&[0, 0, 1, 1]), 1.0);
        assert_eq!(dx.at(&[0, 0, 3, 3]), 1.0);
        assert_eq!(dx.at(&[0, 0, 0, 0]), 0.0);
    }

    #[test]
    fn backward_before_forward_errors() {
        let mut pool = MaxPool2d::new(2, 2);
        assert!(pool.backward(&Tensor::zeros(&[1, 1, 2, 2])).is_err());
    }
}
