//! Integration tests: every model in the zoo must actually *learn* — the
//! forward/backward plumbing through conv, trans-conv, BatchNorm, pooling,
//! residuals and pixel shuffle has to produce usable gradients end to end.

use rte_nn::loss::mse;
use rte_nn::models::{FlNet, FlNetConfig, Pros, ProsConfig, RouteNet, RouteNetConfig};
use rte_nn::optim::{Adam, Optimizer};
use rte_nn::Layer;
use rte_tensor::rng::Xoshiro256;
use rte_tensor::Tensor;

/// A learnable synthetic task: the label is a threshold of input channel
/// 0 smoothed over a neighborhood — local but not pointwise, so the model
/// needs its receptive field.
fn task(n: usize, seed: u64) -> (Tensor, Tensor) {
    let mut rng = Xoshiro256::seed_from(seed);
    let x = Tensor::from_fn(&[n, 3, 8, 8], |_| rng.uniform());
    let mut y = Tensor::zeros(&[n, 1, 8, 8]);
    for ni in 0..n {
        for i in 0..8 {
            for j in 0..8 {
                // 3×3 mean of channel 0.
                let mut acc = 0.0;
                let mut cnt = 0.0;
                for di in -1i32..=1 {
                    for dj in -1i32..=1 {
                        let (ii, jj) = (i as i32 + di, j as i32 + dj);
                        if (0..8).contains(&ii) && (0..8).contains(&jj) {
                            acc += x.at(&[ni, 0, ii as usize, jj as usize]);
                            cnt += 1.0;
                        }
                    }
                }
                y.set(&[ni, 0, i, j], if acc / cnt > 0.5 { 1.0 } else { 0.0 });
            }
        }
    }
    (x, y)
}

fn train_and_measure(model: &mut dyn Layer, steps: usize) -> (f32, f32) {
    let (x, y) = task(6, 11);
    let mut opt = Adam::new(5e-3, 0.0);
    let mut first = 0.0;
    let mut last = 0.0;
    for step in 0..steps {
        let pred = model.forward(&x, true).unwrap();
        let loss = mse(&pred, &y).unwrap();
        if step == 0 {
            first = loss.value;
        }
        last = loss.value;
        model.zero_grad();
        model.backward(&loss.grad).unwrap();
        opt.step(model);
    }
    (first, last)
}

#[test]
fn flnet_learns() {
    let mut rng = Xoshiro256::seed_from(1);
    let mut model = FlNet::new(
        FlNetConfig {
            in_channels: 3,
            hidden: 8,
            kernel: 5,
            depth: 2,
        },
        &mut rng,
    );
    let (first, last) = train_and_measure(&mut model, 40);
    assert!(last < first * 0.7, "FLNet loss {first} -> {last}");
}

#[test]
fn routenet_learns() {
    let mut rng = Xoshiro256::seed_from(2);
    let mut model = RouteNet::new(
        RouteNetConfig {
            in_channels: 3,
            base: 6,
            mid: 8,
            batchnorm: true,
        },
        &mut rng,
    );
    let (first, last) = train_and_measure(&mut model, 40);
    assert!(last < first * 0.8, "RouteNet loss {first} -> {last}");
}

#[test]
fn pros_learns() {
    let mut rng = Xoshiro256::seed_from(3);
    let mut model = Pros::new(
        ProsConfig {
            in_channels: 3,
            base: 4,
            dilations: vec![1, 2],
            refinements: 1,
            batchnorm: true,
        },
        &mut rng,
    );
    let (first, last) = train_and_measure(&mut model, 40);
    assert!(last < first * 0.8, "PROS loss {first} -> {last}");
}

#[test]
fn gradients_flow_to_every_parameter() {
    // After one backward pass, no parameter's gradient may be identically
    // zero (that would mean a dead branch in the wiring).
    let (x, y) = task(2, 21);
    let mut rng = Xoshiro256::seed_from(4);
    let mut models: Vec<(&str, Box<dyn Layer>)> = vec![
        (
            "FLNet",
            Box::new(FlNet::new(
                FlNetConfig {
                    in_channels: 3,
                    hidden: 4,
                    kernel: 3,
                    depth: 2,
                },
                &mut rng,
            )),
        ),
        (
            "RouteNet",
            Box::new(RouteNet::new(
                RouteNetConfig {
                    in_channels: 3,
                    base: 4,
                    mid: 6,
                    batchnorm: true,
                },
                &mut rng,
            )),
        ),
        (
            "PROS",
            Box::new(Pros::new(
                ProsConfig {
                    in_channels: 3,
                    base: 4,
                    dilations: vec![1, 2],
                    refinements: 1,
                    batchnorm: true,
                },
                &mut rng,
            )),
        ),
    ];
    for (name, model) in &mut models {
        let pred = model.forward(&x, true).unwrap();
        let loss = mse(&pred, &y).unwrap();
        model.zero_grad();
        model.backward(&loss.grad).unwrap();
        model.visit_params("", &mut |pname, p| {
            let norm = p.grad.norm();
            assert!(
                norm > 0.0,
                "{name}: parameter {pname} received zero gradient"
            );
        });
    }
}

#[test]
fn eval_mode_is_deterministic_wrt_batch_composition() {
    // In eval mode (running BN stats), predicting a sample alone or in a
    // batch must give identical scores — required for per-client AUC to
    // be well-defined.
    let mut rng = Xoshiro256::seed_from(5);
    let mut model = RouteNet::new(
        RouteNetConfig {
            in_channels: 3,
            base: 4,
            mid: 6,
            batchnorm: true,
        },
        &mut rng,
    );
    let (x, y) = task(4, 31);
    // Train briefly so BN stats move off their init.
    let mut opt = Adam::new(1e-3, 0.0);
    for _ in 0..5 {
        let pred = model.forward(&x, true).unwrap();
        let loss = mse(&pred, &y).unwrap();
        model.zero_grad();
        model.backward(&loss.grad).unwrap();
        opt.step(&mut model);
    }
    let full = model.forward(&x, false).unwrap();
    // Single-sample forward of sample 2.
    let mut single = Tensor::zeros(&[1, 3, 8, 8]);
    single
        .data_mut()
        .copy_from_slice(&x.data()[2 * 3 * 64..3 * 3 * 64]);
    let alone = model.forward(&single, false).unwrap();
    for i in 0..64 {
        let batched = full.data()[2 * 64 + i];
        let solo = alone.data()[i];
        assert!(
            (batched - solo).abs() < 1e-5,
            "eval output depends on batch composition: {batched} vs {solo}"
        );
    }
}
