//! Property-based tests of layer semantics: algebraic identities that
//! must hold for arbitrary inputs and architectures.

use proptest::prelude::*;

use rte_nn::models::{FlNet, FlNetConfig};
use rte_nn::{load_state_dict, state_dict, BatchNorm2d, Conv2d, Layer, Relu, Sequential, Sigmoid};
use rte_tensor::conv::Conv2dSpec;
use rte_tensor::rng::Xoshiro256;
use rte_tensor::Tensor;

fn rand_tensor(dims: &[usize], seed: u64) -> Tensor {
    let mut rng = Xoshiro256::seed_from(seed);
    Tensor::from_fn(dims, |_| rng.normal() * 2.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// ReLU is idempotent and non-negative.
    #[test]
    fn relu_idempotent(seed in 0u64..10_000) {
        let x = rand_tensor(&[2, 3, 4, 4], seed);
        let mut relu = Relu::new();
        let once = relu.forward(&x, true).unwrap();
        let twice = relu.forward(&once, true).unwrap();
        prop_assert_eq!(&once, &twice);
        prop_assert!(once.data().iter().all(|&v| v >= 0.0));
    }

    /// Sigmoid maps into (0,1) and is monotone: larger inputs give larger
    /// outputs elementwise.
    #[test]
    fn sigmoid_bounded_monotone(seed in 0u64..10_000, delta in 0.01f32..3.0) {
        let x = rand_tensor(&[12], seed);
        let mut sig = Sigmoid::new();
        let y = sig.forward(&x, true).unwrap();
        prop_assert!(y.data().iter().all(|&v| v > 0.0 && v < 1.0));
        let y2 = sig.forward(&x.map(|v| v + delta), true).unwrap();
        for (a, b) in y.data().iter().zip(y2.data().iter()) {
            prop_assert!(b > a);
        }
    }

    /// Loading a state dict fully determines model output: two models of
    /// the same architecture with different inits agree after loading.
    #[test]
    fn state_dict_determines_output(seed_a in 0u64..10_000, seed_b in 0u64..10_000) {
        let cfg = FlNetConfig { in_channels: 2, hidden: 4, kernel: 3, depth: 2 };
        let mut rng_a = Xoshiro256::seed_from(seed_a);
        let mut rng_b = Xoshiro256::seed_from(seed_b ^ 0xABCD);
        let mut a = FlNet::new(cfg, &mut rng_a);
        let mut b = FlNet::new(cfg, &mut rng_b);
        let sd = state_dict(&mut a);
        load_state_dict(&mut b, &sd).unwrap();
        let x = rand_tensor(&[1, 2, 6, 6], seed_a ^ seed_b);
        let ya = a.forward(&x, false).unwrap();
        let yb = b.forward(&x, false).unwrap();
        prop_assert_eq!(ya, yb);
    }

    /// A Sequential of one layer behaves exactly like the layer.
    #[test]
    fn sequential_single_stage_is_transparent(seed in 0u64..10_000) {
        let mut rng1 = Xoshiro256::seed_from(seed);
        let mut rng2 = Xoshiro256::seed_from(seed);
        let mut bare = Conv2d::new(2, 3, 3, Conv2dSpec::same(3), &mut rng1);
        let mut seq = Sequential::new();
        seq.push("conv", Conv2d::new(2, 3, 3, Conv2dSpec::same(3), &mut rng2));
        let x = rand_tensor(&[1, 2, 5, 5], seed ^ 7);
        let ya = bare.forward(&x, true).unwrap();
        let yb = seq.forward(&x, true).unwrap();
        prop_assert_eq!(ya, yb);
        let g = rand_tensor(&[1, 3, 5, 5], seed ^ 8);
        let da = bare.backward(&g).unwrap();
        let db = seq.backward(&g).unwrap();
        prop_assert_eq!(da, db);
    }

    /// BatchNorm in training mode is invariant to affine input rescaling
    /// of each channel (per-channel standardization removes scale/shift).
    #[test]
    fn batchnorm_normalizes_away_affine_input_changes(
        seed in 0u64..10_000,
        scale in 0.5f32..4.0,
        shift in -3.0f32..3.0,
    ) {
        let x = rand_tensor(&[4, 2, 4, 4], seed);
        let mut bn1 = BatchNorm2d::new(2);
        let mut bn2 = BatchNorm2d::new(2);
        let y1 = bn1.forward(&x, true).unwrap();
        let y2 = bn2.forward(&x.map(|v| v * scale + shift), true).unwrap();
        for (a, b) in y1.data().iter().zip(y2.data().iter()) {
            prop_assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    /// Zeroing gradients is complete: after zero_grad every parameter
    /// gradient is exactly zero, whatever training happened before.
    #[test]
    fn zero_grad_is_complete(seed in 0u64..10_000, steps in 1usize..4) {
        let cfg = FlNetConfig { in_channels: 2, hidden: 3, kernel: 3, depth: 2 };
        let mut rng = Xoshiro256::seed_from(seed);
        let mut model = FlNet::new(cfg, &mut rng);
        let x = rand_tensor(&[1, 2, 4, 4], seed ^ 1);
        let g = rand_tensor(&[1, 1, 4, 4], seed ^ 2);
        for _ in 0..steps {
            model.forward(&x, true).unwrap();
            model.backward(&g).unwrap();
        }
        model.zero_grad();
        model.visit_params("", &mut |name, p| {
            assert_eq!(p.grad.norm_sq(), 0.0, "{name}");
        });
    }
}
