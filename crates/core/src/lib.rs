//! High-level experiment orchestration for the decentralized routability
//! estimation reproduction (DAC 2022).
//!
//! Glues the workspace together: generates the Table 2 corpus
//! (`rte-eda`), converts it into federated clients (`rte-fed`), builds the
//! requested estimator (`rte-nn`), runs any subset of the paper's eight
//! training methods, and renders the per-client ROC AUC tables in the
//! paper's layout.
//!
//! # Example
//!
//! ```no_run
//! use rte_core::{ExperimentConfig, run_table};
//! use rte_nn::models::ModelKind;
//!
//! let config = ExperimentConfig::scaled();
//! let table = run_table(ModelKind::FlNet, &config)?;
//! println!("{}", rte_core::report::render_table(&table));
//! # Ok::<(), rte_core::CoreError>(())
//! ```

// Pure safe Rust; all workspace `unsafe` lives in `rte_tensor::simd`
// and `rte_eda::mmap` (rte-lint rule L1 enforces this).
#![forbid(unsafe_code)]

mod error;
mod experiment;
pub mod report;

pub use error::CoreError;
pub use experiment::{
    build_clients, build_experiment_clients, build_streaming_clients, mmap_shard_client_set,
    model_factory, run_method_on_clients, run_table, shard_client_set, transport_config,
    transport_config_with_rounds, ExperimentConfig, ShardBackend, TableResult,
};
