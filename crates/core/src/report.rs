//! Report rendering in the paper's table layout.
//!
//! Tables 3-5 are "Testing on Client 1 … Client 9 | Average" with one row
//! per training method; [`render_table`] reproduces that layout as
//! monospace text so a bench run can be diffed against the paper at a
//! glance.

use rte_fed::MethodOutcome;

use crate::TableResult;

/// Renders one table in the paper's layout.
pub fn render_table(table: &TableResult) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Testing Accuracy Comparison (ROC AUC) on Routability Prediction with {}\n",
        table.model
    ));
    let mut header = format!("{:<34}", "Method");
    for k in 1..=table.n_clients {
        header.push_str(&format!("  C{k:<4}"));
    }
    header.push_str("  Average");
    out.push_str(&header);
    out.push('\n');
    out.push_str(&"-".repeat(header.len()));
    out.push('\n');
    for row in &table.rows {
        out.push_str(&render_row(row));
        out.push('\n');
    }
    out
}

/// Renders one method row: label, per-client AUCs, average.
pub fn render_row(outcome: &MethodOutcome) -> String {
    let mut line = format!("{:<34}", outcome.method.label());
    for auc in &outcome.per_client_auc {
        line.push_str(&format!("  {auc:<5.2}"));
    }
    line.push_str(&format!("  {:<7.2}", outcome.average_auc));
    line
}

/// Renders a per-round convergence series (round, average AUC) as an
/// ASCII table — the measurable counterpart of the paper's Fig. 1/2
/// schematics.
pub fn render_history(label: &str, outcome: &MethodOutcome) -> String {
    let mut out = format!("{label}: per-round average ROC AUC\n");
    if outcome.history.is_empty() {
        out.push_str("  (no per-round history recorded; set eval_every > 0)\n");
        return out;
    }
    for rec in &outcome.history {
        let bar_len = (rec.average_auc.clamp(0.0, 1.0) * 40.0).round() as usize;
        out.push_str(&format!(
            "  round {:>3}  auc {:.3}  loss {:.4}  {}\n",
            rec.round,
            rec.average_auc,
            rec.mean_train_loss,
            "#".repeat(bar_len)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rte_fed::{Method, RoundRecord};
    use rte_nn::models::ModelKind;

    fn outcome() -> MethodOutcome {
        MethodOutcome {
            method: Method::FedProx,
            per_client_auc: vec![0.82, 0.78],
            average_auc: 0.80,
            history: vec![RoundRecord {
                round: 1,
                per_client_auc: vec![0.6, 0.6],
                average_auc: 0.6,
                mean_train_loss: 0.25,
            }],
        }
    }

    #[test]
    fn table_contains_all_parts() {
        let table = TableResult {
            model: ModelKind::FlNet,
            rows: vec![outcome()],
            n_clients: 2,
        };
        let text = render_table(&table);
        assert!(text.contains("FLNet"));
        assert!(text.contains("C1"));
        assert!(text.contains("Average"));
        assert!(text.contains("FedProx"));
        assert!(text.contains("0.82"));
        assert!(text.contains("0.80"));
    }

    #[test]
    fn history_renders_bars() {
        let text = render_history("FedProx", &outcome());
        assert!(text.contains("round   1"));
        assert!(text.contains("auc 0.600"));
        assert!(text.contains("####"));
    }

    #[test]
    fn empty_history_is_flagged() {
        let mut o = outcome();
        o.history.clear();
        let text = render_history("x", &o);
        assert!(text.contains("no per-round history"));
    }
}
