//! Report rendering in the paper's table layout.
//!
//! Tables 3-5 are "Testing on Client 1 … Client 9 | Average" with one row
//! per training method; [`render_table`] reproduces that layout as
//! monospace text so a bench run can be diffed against the paper at a
//! glance. Every method outcome now carries a full
//! [`EvalReport`] per client, so [`render_metric_table`] renders the
//! same grid for any companion metric (average precision, accuracy or F1
//! at the paper's 0.5 deployment threshold, …).

use rte_fed::{EvalReport, MethodOutcome, ScenarioOutcome};

use crate::TableResult;

/// Renders one table in the paper's layout: the AUC projection of the
/// per-client reports.
pub fn render_table(table: &TableResult) -> String {
    render_metric_table(
        table,
        &format!(
            "Testing Accuracy Comparison (ROC AUC) on Routability Prediction with {}",
            table.model
        ),
        |r| r.auc,
    )
}

/// Renders one method row: label, per-client AUCs, average.
pub fn render_row(outcome: &MethodOutcome) -> String {
    let mut line = format!("{:<34}", outcome.method.label());
    for auc in &outcome.per_client_auc {
        line.push_str(&format!("  {auc:<5.2}"));
    }
    line.push_str(&format!("  {:<7.2}", outcome.average_auc));
    line
}

/// Renders the per-client grid of an arbitrary [`EvalReport`] projection
/// in the paper's table layout — the companion view of [`render_table`]
/// for the metrics the paper does not print (average precision,
/// thresholded accuracy, F1, …).
pub fn render_metric_table(
    table: &TableResult,
    title: &str,
    metric: impl Fn(&EvalReport) -> f64,
) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let mut header = format!("{:<34}", "Method");
    for k in 1..=table.n_clients {
        header.push_str(&format!("  C{k:<4}"));
    }
    header.push_str("  Average");
    out.push_str(&header);
    out.push('\n');
    out.push_str(&"-".repeat(header.len()));
    out.push('\n');
    for row in &table.rows {
        let mut line = format!("{:<34}", row.method.label());
        let mut sum = 0.0f64;
        for report in &row.per_client {
            let v = metric(report);
            sum += v;
            line.push_str(&format!("  {v:<5.2}"));
        }
        let avg = if row.per_client.is_empty() {
            0.0
        } else {
            sum / row.per_client.len() as f64
        };
        line.push_str(&format!("  {avg:<7.2}"));
        out.push_str(&line);
        out.push('\n');
    }
    out
}

/// Renders one robustness grid (one attack): per-client outcomes of
/// every method × defense row, with diverged clients printed as `div`
/// cells and the average taken over the healthy clients only. The
/// `table6_robustness` bench prints one of these per attack; the output
/// is a pure function of the outcomes, so the determinism suite can pin
/// it byte-for-byte across thread counts and SIMD arms.
pub fn render_robustness_grid(title: &str, n_clients: usize, rows: &[ScenarioOutcome]) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let mut header = format!("{:<34}{:<9}", "Method", "Defense");
    for k in 1..=n_clients {
        header.push_str(&format!("  C{k:<4}"));
    }
    header.push_str("  Average  Diverged");
    out.push_str(&header);
    out.push('\n');
    out.push_str(&"-".repeat(header.len()));
    out.push('\n');
    for row in rows {
        let mut line = format!("{:<34}{:<9}", row.method.label(), row.aggregation.label());
        for cell in row.cell_aucs() {
            match cell {
                Some(v) => line.push_str(&format!("  {v:<5.2}")),
                None => line.push_str(&format!("  {:<5}", "div")),
            }
        }
        match row.healthy_average_auc() {
            Some(avg) => line.push_str(&format!("  {avg:<7.2}")),
            None => line.push_str(&format!("  {:<7}", "div")),
        }
        line.push_str(&format!("  {}", row.diverged().len()));
        out.push_str(&line);
        out.push('\n');
    }
    out
}

/// Renders a per-round convergence series (round, average AUC) as an
/// ASCII table — the measurable counterpart of the paper's Fig. 1/2
/// schematics.
pub fn render_history(label: &str, outcome: &MethodOutcome) -> String {
    let mut out = format!("{label}: per-round average ROC AUC\n");
    if outcome.history.is_empty() {
        out.push_str("  (no per-round history recorded; set eval_every > 0)\n");
        return out;
    }
    for rec in &outcome.history {
        let bar_len = (rec.average_auc.clamp(0.0, 1.0) * 40.0).round() as usize;
        out.push_str(&format!(
            "  round {:>3}  auc {:.3}  loss {:.4}  {}\n",
            rec.round,
            rec.average_auc,
            rec.mean_train_loss,
            "#".repeat(bar_len)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rte_fed::{Method, RoundRecord};
    use rte_nn::models::ModelKind;

    /// An [`EvalReport`] whose AUC lands exactly on `auc` (built from a
    /// synthetic ranking, so all the companion fields are populated).
    fn report(auc: f64) -> EvalReport {
        // `n` correctly ranked pos/neg pairs out of 100: scores are two
        // blocks with `k` swapped pairs.
        let k = ((1.0 - auc) * 100.0).round() as usize;
        let mut scores = vec![0.0f32; 20];
        let mut labels = vec![false; 20];
        for (i, (s, l)) in scores.iter_mut().zip(labels.iter_mut()).enumerate() {
            // 10 positives at high scores, 10 negatives at low scores,
            // then demote positives pairwise to hit the target AUC.
            *l = i < 10;
            *s = if i < 10 { 0.9 } else { 0.1 };
        }
        for i in 0..k / 10 {
            scores[i] = 0.05; // each demoted positive loses 10 pairs
        }
        let r = EvalReport::from_scores(&scores, &labels).unwrap();
        assert!(
            (r.auc - auc).abs() < 0.051,
            "fixture AUC {} vs {auc}",
            r.auc
        );
        r
    }

    fn outcome() -> MethodOutcome {
        MethodOutcome::new(
            Method::FedProx,
            vec![report(0.9), report(0.7)],
            vec![RoundRecord::new(1, vec![report(0.6), report(0.6)], 0.25)],
        )
    }

    #[test]
    fn table_contains_all_parts() {
        let table = TableResult {
            model: ModelKind::FlNet,
            rows: vec![outcome()],
            n_clients: 2,
        };
        let text = render_table(&table);
        assert!(text.contains("FLNet"));
        assert!(text.contains("C1"));
        assert!(text.contains("Average"));
        assert!(text.contains("FedProx"));
        assert!(text.contains("0.90"));
        assert!(text.contains("0.80"));
    }

    #[test]
    fn metric_table_projects_reports() {
        let table = TableResult {
            model: ModelKind::FlNet,
            rows: vec![outcome()],
            n_clients: 2,
        };
        let text = render_metric_table(&table, "Average precision", |r| r.average_precision);
        assert!(text.contains("Average precision"));
        assert!(text.contains("C2"));
        assert!(text.contains("FedProx"));
        let acc = render_metric_table(&table, "Accuracy @ 0.5", |r| r.confusion.accuracy());
        assert!(acc.contains("Accuracy @ 0.5"));
        // The fixture thresholds cleanly, so accuracies are on [0, 1].
        for row in &table.rows {
            for rep in &row.per_client {
                assert!((0.0..=1.0).contains(&rep.confusion.accuracy()));
            }
        }
    }

    #[test]
    fn robustness_grid_renders_divergence() {
        use rte_fed::{Aggregation, FedError};
        let rows = vec![
            ScenarioOutcome {
                method: Method::FedProx,
                aggregation: Aggregation::WeightedMean,
                cells: vec![
                    Ok(report(0.9)),
                    Err(FedError::ClientDiverged {
                        client: 1,
                        reason: "scores contain NaN".into(),
                    }),
                ],
            },
            ScenarioOutcome {
                method: Method::FedProx,
                aggregation: Aggregation::Median,
                cells: vec![Ok(report(0.9)), Ok(report(0.7))],
            },
        ];
        let text = render_robustness_grid("Robustness under sign-flip", 2, &rows);
        assert!(text.contains("Robustness under sign-flip"));
        assert!(text.contains("Defense"));
        assert!(text.contains("Diverged"));
        assert!(text.contains("mean"));
        assert!(text.contains("median"));
        assert!(text.contains("div"), "diverged cell marker");
        // Mean row averages over its single healthy client.
        assert!(text.contains("0.90"));
        let mean_line = text
            .lines()
            .find(|l| l.contains("mean") && !l.contains("median"))
            .unwrap();
        assert!(mean_line.trim_end().ends_with('1'), "{mean_line:?}");
    }

    #[test]
    fn history_renders_bars() {
        let text = render_history("FedProx", &outcome());
        assert!(text.contains("round   1"));
        assert!(text.contains("auc 0.600"));
        assert!(text.contains("####"));
    }

    #[test]
    fn empty_history_is_flagged() {
        let mut o = outcome();
        o.history.clear();
        let text = render_history("x", &o);
        assert!(text.contains("no per-round history"));
    }
}
