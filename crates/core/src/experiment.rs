//! Experiment configuration and the corpus → clients → methods pipeline.

use rte_eda::corpus::{generate_corpus_with, Corpus, CorpusConfig};
use rte_eda::features::FEATURE_CHANNELS;
use rte_fed::{
    methods, Client, ClientSet, FedConfig, Method, MethodOutcome, ModelFactory, Parallelism,
};
use rte_nn::models::{build_model, ModelKind, ModelScale};
use rte_tensor::rng::Xoshiro256;

use crate::CoreError;

/// Everything one experiment needs: data generation settings, federated
/// hyper-parameters, model capacity scale and the method list.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Table 2 corpus generation settings.
    pub corpus: CorpusConfig,
    /// Worker-thread budget for sharded corpus generation (`0` = all
    /// cores; constructors read `RTE_THREADS`). Output is byte-identical
    /// for every value.
    pub corpus_parallelism: Parallelism,
    /// Federated training hyper-parameters (§5.1).
    pub fed: FedConfig,
    /// Model capacity (paper filter counts vs CPU-scaled).
    pub model_scale: ModelScale,
    /// Training methods to run, in table row order.
    pub methods: Vec<Method>,
}

impl ExperimentConfig {
    /// The paper's full settings (hours of CPU time).
    pub fn paper() -> Self {
        ExperimentConfig {
            corpus: CorpusConfig::paper(),
            corpus_parallelism: Parallelism::from_env(),
            fed: FedConfig::paper(),
            model_scale: ModelScale::Paper,
            methods: Method::ALL.to_vec(),
        }
    }

    /// CPU-scale settings preserving the experiment structure (default for
    /// the benchmark binaries).
    pub fn scaled() -> Self {
        ExperimentConfig {
            corpus: CorpusConfig::scaled(),
            corpus_parallelism: Parallelism::from_env(),
            fed: FedConfig::scaled(),
            model_scale: ModelScale::Scaled,
            methods: Method::ALL.to_vec(),
        }
    }

    /// Sets the worker-thread budget for the whole pipeline this config
    /// drives: sharded corpus generation, parallel client training within
    /// each federated round, and parallel per-client evaluation (`0` =
    /// all cores). Pure: only config values change. To also retune the
    /// process-global default for the batched tensor kernels, call
    /// `rte_tensor::parallel::set_global` at your entry point (the bench
    /// binaries do, via `--threads`). Outcomes are bit-identical for
    /// every value (`tests/determinism.rs`,
    /// `tests/parallel_determinism.rs`); only wall-clock changes.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.corpus_parallelism = Parallelism::new(threads);
        self.fed.parallelism = Parallelism::new(threads);
        self
    }

    /// Minimal settings for tests.
    pub fn tiny() -> Self {
        let mut fed = FedConfig::tiny();
        // The tiny FedConfig targets 2 synthetic clients; the Table 2
        // corpus always has 9, so use the paper's cluster structure.
        fed.clusters = 4;
        fed.assigned_clusters = FedConfig::paper_assignment();
        ExperimentConfig {
            corpus: CorpusConfig::tiny(),
            corpus_parallelism: Parallelism::from_env(),
            fed,
            model_scale: ModelScale::Scaled,
            methods: vec![Method::LocalOnly, Method::FedProx],
        }
    }
}

/// Result of one table (one model kind × all requested methods).
#[derive(Debug, Clone)]
pub struct TableResult {
    /// Which estimator this table evaluates.
    pub model: ModelKind,
    /// One outcome per requested method, in order.
    pub rows: Vec<MethodOutcome>,
    /// Number of clients (columns before the average).
    pub n_clients: usize,
}

impl TableResult {
    /// The outcome of a specific method, if it was run.
    pub fn row(&self, method: Method) -> Option<&MethodOutcome> {
        self.rows.iter().find(|r| r.method == method)
    }
}

/// Converts a generated corpus into federated clients (features/labels
/// become private per-client tensors).
///
/// # Errors
///
/// Propagates batching errors (e.g. an empty split).
pub fn build_clients(corpus: &Corpus) -> Result<Vec<Client>, CoreError> {
    corpus
        .clients
        .iter()
        .map(|c| {
            let (train_x, train_y) = c.train.full_batch()?;
            let (test_x, test_y) = c.test.full_batch()?;
            Ok(Client::new(
                c.spec.index,
                ClientSet::new(train_x, train_y).map_err(CoreError::Fed)?,
                ClientSet::new(test_x, test_y).map_err(CoreError::Fed)?,
            ))
        })
        .collect()
}

/// Builds a deterministic [`ModelFactory`] for the given estimator.
pub fn model_factory(kind: ModelKind, scale: ModelScale) -> ModelFactory {
    Box::new(move |seed| {
        let mut rng = Xoshiro256::seed_from(seed);
        build_model(kind, FEATURE_CHANNELS, scale, &mut rng)
    })
}

/// Runs one method against pre-built clients (used by the benches that
/// sweep methods without regenerating data).
///
/// # Errors
///
/// Propagates federated training failures.
pub fn run_method_on_clients(
    method: Method,
    clients: &[Client],
    kind: ModelKind,
    config: &ExperimentConfig,
) -> Result<MethodOutcome, CoreError> {
    let factory = model_factory(kind, config.model_scale);
    Ok(methods::run_method(method, clients, &factory, &config.fed)?)
}

/// Generates the corpus and runs every requested method for one estimator
/// — i.e. regenerates one of the paper's Tables 3-5.
///
/// # Errors
///
/// Returns [`CoreError`] on generation or training failures, or when
/// `config.methods` is empty.
pub fn run_table(kind: ModelKind, config: &ExperimentConfig) -> Result<TableResult, CoreError> {
    if config.methods.is_empty() {
        return Err(CoreError::InvalidConfig {
            reason: "no methods requested".into(),
        });
    }
    let corpus = generate_corpus_with(&config.corpus, config.corpus_parallelism)?;
    let clients = build_clients(&corpus)?;
    let rows = config
        .methods
        .iter()
        .map(|&m| run_method_on_clients(m, &clients, kind, config))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(TableResult {
        model: kind,
        rows,
        n_clients: clients.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_clients_reflects_table2() {
        let corpus = rte_eda::corpus::generate_corpus(&CorpusConfig::tiny()).unwrap();
        let clients = build_clients(&corpus).unwrap();
        assert_eq!(clients.len(), 9);
        assert_eq!(clients[0].id, 1);
        assert_eq!(clients[0].weight(), 4); // 4 train designs × 1 placement
        assert_eq!(clients[8].weight(), 9);
    }

    #[test]
    fn factory_is_deterministic() {
        let f = model_factory(ModelKind::FlNet, ModelScale::Scaled);
        let mut a = f(3);
        let mut b = f(3);
        assert_eq!(
            rte_nn::state_dict(a.as_mut()),
            rte_nn::state_dict(b.as_mut())
        );
    }

    #[test]
    fn tiny_table_runs_end_to_end() {
        let config = ExperimentConfig::tiny();
        let table = run_table(ModelKind::FlNet, &config).unwrap();
        assert_eq!(table.rows.len(), 2);
        assert_eq!(table.n_clients, 9);
        assert!(table.row(Method::FedProx).is_some());
        assert!(table.row(Method::Ifca).is_none());
        for row in &table.rows {
            assert_eq!(row.per_client_auc.len(), 9);
            assert!(row.per_client_auc.iter().all(|a| a.is_finite()));
        }
    }

    #[test]
    fn with_threads_plumbs_parallelism() {
        let before = rte_tensor::parallel::global();
        let config = ExperimentConfig::tiny().with_threads(2);
        assert_eq!(config.fed.parallelism, Parallelism::new(2));
        assert_eq!(config.corpus_parallelism, Parallelism::new(2));
        // Pure builder: the process-global kernel default is untouched.
        assert_eq!(rte_tensor::parallel::global(), before);
    }

    #[test]
    fn empty_method_list_rejected() {
        let mut config = ExperimentConfig::tiny();
        config.methods.clear();
        assert!(run_table(ModelKind::FlNet, &config).is_err());
    }
}
