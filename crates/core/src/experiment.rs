//! Experiment configuration and the corpus → clients → methods pipeline.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use rte_eda::corpus::{
    generate_corpus_for_specs_with, universe_specs, ClientSpec, Corpus, CorpusConfig,
    UniverseConfig, PAPER_CLIENTS,
};
use rte_eda::features::FEATURE_CHANNELS;
use rte_eda::mmap::MmapShardReader;
use rte_eda::shard::{
    compact_dir, CorpusReader, CorpusWriter, ShardReader, DEFAULT_CHUNK, DEFAULT_COMPRESS_CHUNK,
    SHARD_EXTENSION,
};
use rte_fed::stream::RecordSource;
use rte_fed::{
    methods, Client, ClientSet, FedConfig, FedError, MappedClientSet, Method, MethodOutcome,
    ModelFactory, Parallelism, StreamingClientSet,
};
use rte_nn::models::{build_model, ModelKind, ModelScale};
use rte_tensor::rng::Xoshiro256;

use crate::CoreError;

/// Everything one experiment needs: data generation settings, federated
/// hyper-parameters, model capacity scale and the method list.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Table 2 corpus generation settings.
    pub corpus: CorpusConfig,
    /// Worker-thread budget for sharded corpus generation (`0` = all
    /// cores; constructors read `RTE_THREADS`). Output is byte-identical
    /// for every value.
    pub corpus_parallelism: Parallelism,
    /// When set, the experiment runs **out-of-core**: the corpus is
    /// generated straight into shard files under this directory (reusing
    /// existing shards whose provenance matches) and every client streams
    /// bounded-memory chunks instead of materializing its tensors.
    /// `None` (the default) keeps the in-memory path. Outcomes are
    /// bit-identical either way.
    pub corpus_dir: Option<PathBuf>,
    /// Samples per streamed chunk when `corpus_dir` is set: streaming
    /// peak memory is proportional to this, never to the corpus size. A
    /// pure memory/wall-clock knob — results do not change.
    pub stream_chunk: usize,
    /// Which reader serves shard files when `corpus_dir` is set. A pure
    /// wall-clock knob — every backend yields bit-identical outcomes
    /// (`tests/streaming_determinism.rs`).
    pub shard_backend: ShardBackend,
    /// When `true` (and `corpus_dir` is set), shard files are compacted
    /// in place with the delta+bitpack chunk codec before clients open
    /// them. The codec round-trips bitwise, so this is a pure disk-size
    /// knob; incompatible with [`ShardBackend::Mmap`], which needs raw
    /// fixed-size records.
    pub compress_shards: bool,
    /// When set, the experiment trains a synthesized client universe of
    /// this shape (`--clients N --designs D`) instead of the Table 2
    /// fleet. Use [`ExperimentConfig::with_population`] so the cluster
    /// assignment is regenerated to match the population size.
    pub population: Option<UniverseConfig>,
    /// Federated training hyper-parameters (§5.1).
    pub fed: FedConfig,
    /// Model capacity (paper filter counts vs CPU-scaled).
    pub model_scale: ModelScale,
    /// Training methods to run, in table row order.
    pub methods: Vec<Method>,
}

impl ExperimentConfig {
    /// The paper's full settings (hours of CPU time).
    pub fn paper() -> Self {
        ExperimentConfig {
            corpus: CorpusConfig::paper(),
            corpus_parallelism: Parallelism::from_env(),
            corpus_dir: None,
            stream_chunk: DEFAULT_CHUNK,
            shard_backend: ShardBackend::Read,
            compress_shards: false,
            population: None,
            fed: FedConfig::paper(),
            model_scale: ModelScale::Paper,
            methods: Method::ALL.to_vec(),
        }
    }

    /// CPU-scale settings preserving the experiment structure (default for
    /// the benchmark binaries).
    pub fn scaled() -> Self {
        ExperimentConfig {
            corpus: CorpusConfig::scaled(),
            corpus_parallelism: Parallelism::from_env(),
            corpus_dir: None,
            stream_chunk: DEFAULT_CHUNK,
            shard_backend: ShardBackend::Read,
            compress_shards: false,
            population: None,
            fed: FedConfig::scaled(),
            model_scale: ModelScale::Scaled,
            methods: Method::ALL.to_vec(),
        }
    }

    /// Sets the worker-thread budget for the whole pipeline this config
    /// drives: sharded corpus generation, parallel client training within
    /// each federated round, and parallel per-client evaluation (`0` =
    /// all cores). Pure: only config values change. To also retune the
    /// process-global default for the batched tensor kernels, call
    /// `rte_tensor::parallel::set_global` at your entry point (the bench
    /// binaries do, via `--threads`). Outcomes are bit-identical for
    /// every value (`tests/determinism.rs`,
    /// `tests/parallel_determinism.rs`); only wall-clock changes.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.corpus_parallelism = Parallelism::new(threads);
        self.fed.parallelism = Parallelism::new(threads);
        self
    }

    /// Switches the experiment to the out-of-core path: the corpus lives
    /// as shard files under `dir` and clients stream bounded-memory
    /// chunks. Outcomes are bit-identical to the in-memory default
    /// (`tests/streaming_determinism.rs`).
    #[must_use]
    pub fn with_corpus_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.corpus_dir = Some(dir.into());
        self
    }

    /// Sets the samples per streamed chunk (only meaningful together
    /// with [`ExperimentConfig::with_corpus_dir`]). A pure memory knob —
    /// results do not change.
    #[must_use]
    pub fn with_stream_chunk(mut self, chunk: usize) -> Self {
        self.stream_chunk = chunk;
        self
    }

    /// Selects the shard reader backend (only meaningful together with
    /// [`ExperimentConfig::with_corpus_dir`]). A pure wall-clock knob —
    /// outcomes are bit-identical across backends.
    #[must_use]
    pub fn with_shard_backend(mut self, backend: ShardBackend) -> Self {
        self.shard_backend = backend;
        self
    }

    /// Compacts shard files with the chunk codec before clients open
    /// them (only meaningful together with
    /// [`ExperimentConfig::with_corpus_dir`]). The codec round-trips
    /// bitwise, so outcomes do not change — only bytes on disk do.
    #[must_use]
    pub fn with_compressed_shards(mut self) -> Self {
        self.compress_shards = true;
        self
    }

    /// Switches the experiment to a synthesized client universe
    /// (`--clients N --designs D`) and regenerates the cluster
    /// assignment to cover the population: clusters keep their count
    /// (capped at the client count) and clients are assigned round-robin
    /// (`client i → cluster i mod clusters`), which is a partition for
    /// any population size.
    #[must_use]
    pub fn with_population(mut self, universe: UniverseConfig) -> Self {
        let clusters = self.fed.clusters.clamp(1, universe.clients.max(1));
        self.fed.clusters = clusters;
        self.fed.assigned_clusters = (0..clusters)
            .map(|j| {
                (0..universe.clients)
                    .filter(|i| i % clusters == j)
                    .collect()
            })
            .collect();
        self.population = Some(universe);
        self
    }

    /// The client specs this config trains: the synthesized universe
    /// when [`ExperimentConfig::population`] is set, otherwise the
    /// paper's Table 2 fleet.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Eda`] for an invalid universe shape.
    pub fn client_specs(&self) -> Result<Vec<ClientSpec>, CoreError> {
        match &self.population {
            Some(universe) => Ok(universe_specs(&self.corpus, universe)?),
            None => Ok(PAPER_CLIENTS.to_vec()),
        }
    }

    /// Minimal settings for tests.
    pub fn tiny() -> Self {
        let mut fed = FedConfig::tiny();
        // The tiny FedConfig targets 2 synthetic clients; the Table 2
        // corpus always has 9, so use the paper's cluster structure.
        fed.clusters = 4;
        fed.assigned_clusters = FedConfig::paper_assignment();
        ExperimentConfig {
            corpus: CorpusConfig::tiny(),
            corpus_parallelism: Parallelism::from_env(),
            corpus_dir: None,
            stream_chunk: DEFAULT_CHUNK,
            shard_backend: ShardBackend::Read,
            compress_shards: false,
            population: None,
            fed,
            model_scale: ModelScale::Scaled,
            methods: vec![Method::LocalOnly, Method::FedProx],
        }
    }
}

/// Which reader serves shard files to out-of-core clients. Both
/// backends run the same open-time validation and deliver the same
/// bytes; they differ only in *how* records reach the trainer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardBackend {
    /// `seek`+`read` through a double-buffered chunk cache (the
    /// default; works for raw and compressed shards).
    #[default]
    Read,
    /// Memory-mapped zero-copy reads with lazy per-chunk CRC (raw
    /// shards only — compressed shards have no fixed-size records to
    /// map).
    Mmap,
}

/// Result of one table (one model kind × all requested methods).
#[derive(Debug, Clone)]
pub struct TableResult {
    /// Which estimator this table evaluates.
    pub model: ModelKind,
    /// One outcome per requested method, in order.
    pub rows: Vec<MethodOutcome>,
    /// Number of clients (columns before the average).
    pub n_clients: usize,
}

impl TableResult {
    /// The outcome of a specific method, if it was run.
    pub fn row(&self, method: Method) -> Option<&MethodOutcome> {
        self.rows.iter().find(|r| r.method == method)
    }
}

/// Converts a generated corpus into federated clients (features/labels
/// become private per-client tensors).
///
/// # Errors
///
/// Propagates batching errors (e.g. an empty split).
pub fn build_clients(corpus: &Corpus) -> Result<Vec<Client>, CoreError> {
    corpus
        .clients
        .iter()
        .map(|c| {
            let (train_x, train_y) = c.train.full_batch()?;
            let (test_x, test_y) = c.test.full_batch()?;
            Ok(Client::new(
                c.spec.index,
                ClientSet::new(train_x, train_y).map_err(CoreError::Fed)?,
                ClientSet::new(test_x, test_y).map_err(CoreError::Fed)?,
            ))
        })
        .collect()
}

/// [`RecordSource`] over one EDA shard file — the adapter that lets
/// `rte-fed`'s streaming client sets feed on `rte-eda`'s on-disk format
/// without either crate depending on the other.
struct ShardSource {
    reader: ShardReader,
}

impl RecordSource for ShardSource {
    fn len(&self) -> usize {
        self.reader.len()
    }

    fn geometry(&self) -> (usize, usize, usize) {
        self.reader.geometry()
    }

    fn read_into(
        &self,
        range: std::ops::Range<usize>,
        features: &mut Vec<f32>,
        labels: &mut Vec<f32>,
    ) -> Result<(), FedError> {
        self.reader
            .read_batch_into(range, features, labels)
            .map_err(|e| FedError::Stream {
                reason: e.to_string(),
            })
    }

    fn descriptor(&self) -> String {
        self.reader.path().display().to_string()
    }
}

/// Wraps one shard file as a streaming client split.
///
/// # Errors
///
/// Returns [`CoreError::Fed`] for a zero chunk size.
pub fn shard_client_set(reader: ShardReader, chunk: usize) -> Result<ClientSet, CoreError> {
    let source: Arc<dyn RecordSource> = Arc::new(ShardSource { reader });
    Ok(ClientSet::streaming(StreamingClientSet::new(
        source, chunk,
    )?))
}

/// [`RecordSource`] over a memory-mapped shard — the zero-copy sibling
/// of [`ShardSource`]: records decode straight from the mapped pages
/// (lazy per-chunk CRC on first touch), no seek, no scratch buffer.
struct MmapShardSource {
    reader: MmapShardReader,
}

impl RecordSource for MmapShardSource {
    fn len(&self) -> usize {
        self.reader.len()
    }

    fn geometry(&self) -> (usize, usize, usize) {
        self.reader.geometry()
    }

    fn read_into(
        &self,
        range: std::ops::Range<usize>,
        features: &mut Vec<f32>,
        labels: &mut Vec<f32>,
    ) -> Result<(), FedError> {
        self.reader
            .read_batch_into(range, features, labels)
            .map_err(|e| FedError::Stream {
                reason: e.to_string(),
            })
    }

    fn descriptor(&self) -> String {
        self.reader.path().display().to_string()
    }
}

/// Wraps one memory-mapped shard as a mapped (cache-less) client split.
pub fn mmap_shard_client_set(reader: MmapShardReader) -> ClientSet {
    let source: Arc<dyn RecordSource> = Arc::new(MmapShardSource { reader });
    ClientSet::mapped(MappedClientSet::new(source))
}

/// Builds one client split on the configured [`ShardBackend`].
fn backend_client_set(
    reader: ShardReader,
    config: &ExperimentConfig,
) -> Result<ClientSet, CoreError> {
    match config.shard_backend {
        ShardBackend::Read => shard_client_set(reader, config.stream_chunk),
        ShardBackend::Mmap => {
            let path = reader.path().to_path_buf();
            drop(reader); // the mapping replaces the descriptor
            Ok(mmap_shard_client_set(MmapShardReader::open_with_chunk(
                path,
                config.stream_chunk,
            )?))
        }
    }
}

/// True when `dir` exists and holds at least one shard file.
fn has_shards(dir: &Path) -> bool {
    std::fs::read_dir(dir)
        .map(|entries| {
            entries
                .filter_map(Result::ok)
                .any(|e| e.path().extension().and_then(|x| x.to_str()) == Some(SHARD_EXTENSION))
        })
        .unwrap_or(false)
}

/// Materializes the experiment's corpus as shard files (generating them
/// streamingly if the directory holds none) and builds clients that
/// stream bounded-memory chunks from them.
///
/// Existing shards are reused only when their full provenance (seed,
/// grid, placement scale) matches the config; a mismatch is an error
/// rather than a silent run on stale data.
///
/// # Errors
///
/// Returns [`CoreError`] on generation/validation failures, when the
/// directory's shards belong to a different corpus, or when the
/// directory holds damaged shards (the error says how to recover).
pub fn build_streaming_clients(config: &ExperimentConfig) -> Result<Vec<Client>, CoreError> {
    let dir = config
        .corpus_dir
        .as_ref()
        .ok_or_else(|| CoreError::InvalidConfig {
            reason: "build_streaming_clients requires corpus_dir".into(),
        })?;
    if config.compress_shards && config.shard_backend == ShardBackend::Mmap {
        return Err(CoreError::InvalidConfig {
            reason: "compressed shards have no fixed-size records to map; \
                     use the read backend or drop compression"
                .into(),
        });
    }
    let specs = config.client_specs()?;
    if !has_shards(dir) {
        CorpusWriter::new(dir)
            .with_chunk(config.stream_chunk)
            .with_parallelism(config.corpus_parallelism)
            .write_specs(&specs, &config.corpus)?;
    }
    if config.compress_shards {
        // Idempotent: already-compressed shards are skipped, so a reused
        // directory compacts at most once.
        compact_dir(dir, DEFAULT_COMPRESS_CHUNK)?;
    }
    // Shard files are present (writes are temp-name + rename, so these
    // are sealed shards, not generation debris) — if they still fail to
    // open, tell the operator how to get unstuck instead of failing
    // identically forever.
    let reader = CorpusReader::open(dir).map_err(|e| CoreError::InvalidConfig {
        reason: format!(
            "corpus dir {} is unusable ({e}); delete the directory (or point \
             --corpus-dir elsewhere) to regenerate",
            dir.display()
        ),
    })?;
    if reader.seed() != config.corpus.seed
        || reader.grid() != config.corpus.grid
        || reader.placement_scale().to_bits() != config.corpus.placement_scale.to_bits()
    {
        return Err(CoreError::InvalidConfig {
            reason: format!(
                "corpus dir {} holds shards for a different corpus \
                 (seed {:#x} scale {} vs requested seed {:#x} scale {}); \
                 regenerate or point elsewhere",
                dir.display(),
                reader.seed(),
                reader.placement_scale(),
                config.corpus.seed,
                config.corpus.placement_scale
            ),
        });
    }
    // The streaming path always materializes the configured fleet; a
    // coherent-but-partial directory (e.g. files deleted by hand) must
    // not silently run the experiment on a subset of clients.
    let expected: Vec<usize> = specs.iter().map(|s| s.index).collect();
    let found: Vec<usize> = reader.clients().iter().map(|c| c.client_index).collect();
    if found != expected {
        return Err(CoreError::InvalidConfig {
            reason: format!(
                "corpus dir {} holds clients {found:?} but this experiment needs \
                 {expected:?}; delete the directory to regenerate",
                dir.display()
            ),
        });
    }
    reader
        .into_clients()
        .into_iter()
        .map(|shards| {
            Ok(Client::new(
                shards.client_index,
                backend_client_set(shards.train, config)?,
                backend_client_set(shards.test, config)?,
            ))
        })
        .collect()
}

/// Builds the experiment's clients on whichever path the config selects:
/// streaming from `corpus_dir` when set, otherwise generating the corpus
/// in memory.
///
/// # Errors
///
/// Propagates generation and batching errors.
pub fn build_experiment_clients(config: &ExperimentConfig) -> Result<Vec<Client>, CoreError> {
    if config.corpus_dir.is_some() {
        build_streaming_clients(config)
    } else {
        let corpus = generate_corpus_for_specs_with(
            &config.client_specs()?,
            &config.corpus,
            config.corpus_parallelism,
        )?;
        build_clients(&corpus)
    }
}

/// Builds a deterministic [`ModelFactory`] for the given estimator.
pub fn model_factory(kind: ModelKind, scale: ModelScale) -> ModelFactory {
    Box::new(move |seed| {
        let mut rng = Xoshiro256::seed_from(seed);
        build_model(kind, FEATURE_CHANNELS, scale, &mut rng)
    })
}

/// Runs one method against pre-built clients (used by the benches that
/// sweep methods without regenerating data).
///
/// # Errors
///
/// Propagates federated training failures.
pub fn run_method_on_clients(
    method: Method,
    clients: &[Client],
    kind: ModelKind,
    config: &ExperimentConfig,
) -> Result<MethodOutcome, CoreError> {
    let factory = model_factory(kind, config.model_scale);
    Ok(methods::run_method(method, clients, &factory, &config.fed)?)
}

/// Generates the corpus and runs every requested method for one estimator
/// — i.e. regenerates one of the paper's Tables 3-5. With
/// [`ExperimentConfig::corpus_dir`] set, the whole run is out-of-core:
/// the corpus streams to shards and clients stream chunks back, with
/// bit-identical outcomes.
///
/// # Errors
///
/// Returns [`CoreError`] on generation or training failures, or when
/// `config.methods` is empty.
pub fn run_table(kind: ModelKind, config: &ExperimentConfig) -> Result<TableResult, CoreError> {
    if config.methods.is_empty() {
        return Err(CoreError::InvalidConfig {
            reason: "no methods requested".into(),
        });
    }
    let clients = build_experiment_clients(config)?;
    let rows = config
        .methods
        .iter()
        .map(|&m| run_method_on_clients(m, &clients, kind, config))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(TableResult {
        model: kind,
        rows,
        n_clients: clients.len(),
    })
}

/// The experiment configuration the `rte-coordinator` and `rte-client`
/// binaries (and the release-gated multi-process test) share. Every
/// process rebuilds the identical fleet from `(clients, seed, quick)`
/// alone — that is the whole trick behind running one federated round
/// across process boundaries bit-identically: data never crosses the
/// wire, only parameters do, because each side regenerates its private
/// split from the public config.
///
/// Mirrors the `rte-bench` `--quick --seed N --clients K` semantics so
/// a coordinator table can be compared byte-for-byte against the
/// in-process bench path.
pub fn transport_config(clients: usize, seed: u64, quick: bool) -> ExperimentConfig {
    transport_config_with_rounds(clients, seed, quick, None)
}

/// [`transport_config`] with an explicit round-count override — what
/// `rte-coordinator --rounds N` builds, so checkpoint/resume and chaos
/// runs can be long enough to kill midway. `None` keeps the profile's
/// default (2 rounds under `--quick`).
///
/// The round count feeds the checkpoint config digest: a checkpoint
/// taken under `--rounds 6` cannot be resumed into a `--rounds 4` run.
pub fn transport_config_with_rounds(
    clients: usize,
    seed: u64,
    quick: bool,
    rounds: Option<usize>,
) -> ExperimentConfig {
    let mut config = ExperimentConfig::scaled();
    if quick {
        config.corpus.placement_scale = 0.0; // one placement per design
        config.fed.rounds = 2;
        config.fed.local_steps = 4;
        config.fed.finetune_steps = 8;
    }
    if let Some(rounds) = rounds {
        config.fed.rounds = rounds.max(1);
    }
    config.corpus.seed = seed;
    config.fed.seed = seed ^ 0xFED5;
    config = config.with_population(UniverseConfig::new(clients, 4 * clients));
    config.methods = vec![Method::FedProx];
    config
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_clients_reflects_table2() {
        let corpus = rte_eda::corpus::generate_corpus(&CorpusConfig::tiny()).unwrap();
        let clients = build_clients(&corpus).unwrap();
        assert_eq!(clients.len(), 9);
        assert_eq!(clients[0].id, 1);
        assert_eq!(clients[0].weight(), 4); // 4 train designs × 1 placement
        assert_eq!(clients[8].weight(), 9);
    }

    #[test]
    fn factory_is_deterministic() {
        let f = model_factory(ModelKind::FlNet, ModelScale::Scaled);
        let mut a = f(3);
        let mut b = f(3);
        assert_eq!(
            rte_nn::state_dict(a.as_mut()),
            rte_nn::state_dict(b.as_mut())
        );
    }

    #[test]
    fn tiny_table_runs_end_to_end() {
        let config = ExperimentConfig::tiny();
        let table = run_table(ModelKind::FlNet, &config).unwrap();
        assert_eq!(table.rows.len(), 2);
        assert_eq!(table.n_clients, 9);
        assert!(table.row(Method::FedProx).is_some());
        assert!(table.row(Method::Ifca).is_none());
        for row in &table.rows {
            assert_eq!(row.per_client_auc.len(), 9);
            assert!(row.per_client_auc.iter().all(|a| a.is_finite()));
        }
    }

    #[test]
    fn with_threads_plumbs_parallelism() {
        let before = rte_tensor::parallel::global();
        let config = ExperimentConfig::tiny().with_threads(2);
        assert_eq!(config.fed.parallelism, Parallelism::new(2));
        assert_eq!(config.corpus_parallelism, Parallelism::new(2));
        // Pure builder: the process-global kernel default is untouched.
        assert_eq!(rte_tensor::parallel::global(), before);
    }

    #[test]
    fn empty_method_list_rejected() {
        let mut config = ExperimentConfig::tiny();
        config.methods.clear();
        assert!(run_table(ModelKind::FlNet, &config).is_err());
    }

    /// A unique scratch dir under the system temp root (unit tests have
    /// no `CARGO_TARGET_TMPDIR`).
    fn scratch_dir(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("rte-core-{tag}-{}", std::process::id()))
    }

    #[test]
    fn streaming_clients_mirror_in_memory_clients() {
        let dir = scratch_dir("stream");
        let _ = std::fs::remove_dir_all(&dir);
        let config = ExperimentConfig::tiny()
            .with_corpus_dir(&dir)
            .with_stream_chunk(3);
        // First call generates shards, second reuses them.
        let streamed = build_experiment_clients(&config).unwrap();
        let streamed_again = build_experiment_clients(&config).unwrap();
        let corpus = rte_eda::corpus::generate_corpus(&config.corpus).unwrap();
        let in_memory = build_clients(&corpus).unwrap();
        assert_eq!(streamed.len(), in_memory.len());
        for (s, m) in streamed.iter().zip(&in_memory) {
            assert_eq!(s.id, m.id);
            assert_eq!(s.weight(), m.weight());
            assert!(s.train.as_streaming().is_some());
            // Same bytes behind the streaming facade.
            assert_eq!(
                s.test.minibatch_range(0..s.test.len()),
                m.test.minibatch_range(0..m.test.len())
            );
        }
        assert_eq!(streamed_again.len(), streamed.len());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mmap_clients_mirror_read_clients() {
        let dir = scratch_dir("mmap");
        let _ = std::fs::remove_dir_all(&dir);
        let read_config = ExperimentConfig::tiny()
            .with_corpus_dir(&dir)
            .with_stream_chunk(3);
        let mmap_config = read_config.clone().with_shard_backend(ShardBackend::Mmap);
        let read_clients = build_experiment_clients(&read_config).unwrap();
        let mapped_clients = build_experiment_clients(&mmap_config).unwrap();
        assert_eq!(read_clients.len(), mapped_clients.len());
        for (r, m) in read_clients.iter().zip(&mapped_clients) {
            assert_eq!(r.id, m.id);
            assert_eq!(r.weight(), m.weight());
            assert!(m.train.as_mapped().is_some());
            // Same bytes behind both backends.
            assert_eq!(
                r.test.minibatch_range(0..r.test.len()),
                m.test.minibatch_range(0..m.test.len())
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compressed_shards_serve_identical_clients() {
        let dir = scratch_dir("compress");
        let _ = std::fs::remove_dir_all(&dir);
        let raw_config = ExperimentConfig::tiny()
            .with_corpus_dir(&dir)
            .with_stream_chunk(3);
        let raw = build_experiment_clients(&raw_config).unwrap();
        let packed_config = raw_config.clone().with_compressed_shards();
        let packed = build_experiment_clients(&packed_config).unwrap();
        for (r, p) in raw.iter().zip(&packed) {
            assert_eq!(
                r.test.minibatch_range(0..r.test.len()),
                p.test.minibatch_range(0..p.test.len())
            );
        }
        // A second compressed build reuses the compacted directory.
        let again = build_experiment_clients(&packed_config).unwrap();
        assert_eq!(again.len(), packed.len());
        // Mmap cannot serve compressed shards: typed error, not a panic.
        let err =
            build_experiment_clients(&packed_config.clone().with_shard_backend(ShardBackend::Mmap))
                .unwrap_err();
        assert!(err.to_string().contains("compress"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn population_replaces_the_table2_fleet() {
        let config = ExperimentConfig::tiny().with_population(UniverseConfig::new(5, 12));
        // Cluster assignment was regenerated to partition the universe.
        config.fed.validate_assignment(5).unwrap();
        let specs = config.client_specs().unwrap();
        assert_eq!(specs.len(), 5);
        assert_eq!(
            specs.iter().map(|s| s.index).collect::<Vec<_>>(),
            vec![1, 2, 3, 4, 5]
        );
        let clients = build_experiment_clients(&config).unwrap();
        assert_eq!(clients.len(), 5);
        assert!(clients.iter().all(|c| c.weight() >= 1));
    }

    #[test]
    fn population_streams_through_shards_identically() {
        let dir = scratch_dir("universe");
        let _ = std::fs::remove_dir_all(&dir);
        let config = ExperimentConfig::tiny().with_population(UniverseConfig::new(3, 7));
        let in_memory = build_experiment_clients(&config).unwrap();
        let streamed =
            build_experiment_clients(&config.clone().with_corpus_dir(&dir).with_stream_chunk(2))
                .unwrap();
        assert_eq!(in_memory.len(), streamed.len());
        for (m, s) in in_memory.iter().zip(&streamed) {
            assert_eq!(m.id, s.id);
            assert_eq!(
                m.test.minibatch_range(0..m.test.len()),
                s.test.minibatch_range(0..s.test.len())
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_corpus_dir_is_rejected() {
        let dir = scratch_dir("stale");
        let _ = std::fs::remove_dir_all(&dir);
        let config = ExperimentConfig::tiny().with_corpus_dir(&dir);
        build_experiment_clients(&config).unwrap();
        // Different seed: stale.
        let mut other = config.clone();
        other.corpus.seed ^= 1;
        let err = build_experiment_clients(&other).unwrap_err();
        assert!(matches!(err, CoreError::InvalidConfig { .. }), "{err}");
        // Same seed, different placement scale: also stale (would
        // silently train on the wrong corpus size otherwise).
        let mut other = config.clone();
        other.corpus.placement_scale = 0.5;
        let err = build_experiment_clients(&other).unwrap_err();
        assert!(matches!(err, CoreError::InvalidConfig { .. }), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn partial_corpus_dir_is_rejected_not_subset_run() {
        let dir = scratch_dir("partial");
        let _ = std::fs::remove_dir_all(&dir);
        let config = ExperimentConfig::tiny().with_corpus_dir(&dir);
        build_experiment_clients(&config).unwrap();
        // Hand-delete one client's pair: still a coherent directory,
        // but no longer the nine-client Table 2 corpus.
        std::fs::remove_file(dir.join("client05.train.rtes")).unwrap();
        std::fs::remove_file(dir.join("client05.test.rtes")).unwrap();
        let err = build_experiment_clients(&config).unwrap_err();
        match err {
            CoreError::InvalidConfig { reason } => {
                assert!(reason.contains("needs"), "{reason}");
            }
            other => panic!("expected InvalidConfig, got {other}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn damaged_corpus_dir_error_says_how_to_recover() {
        let dir = scratch_dir("damaged");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        // A lone garbage .rtes file: has_shards() is true, so generation
        // is skipped and the open fails — the error must point at the
        // recovery path instead of being a bare decode failure.
        std::fs::write(dir.join("client01.train.rtes"), b"garbage").unwrap();
        let config = ExperimentConfig::tiny().with_corpus_dir(&dir);
        let err = build_experiment_clients(&config).unwrap_err();
        match err {
            CoreError::InvalidConfig { reason } => {
                assert!(reason.contains("delete the directory"), "{reason}");
            }
            other => panic!("expected InvalidConfig, got {other}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
