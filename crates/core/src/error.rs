//! Error type for experiment orchestration.

use std::error::Error;
use std::fmt;

use rte_eda::EdaError;
use rte_fed::FedError;

/// Error produced while orchestrating an experiment.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// Data generation failed.
    Eda(EdaError),
    /// Federated training or evaluation failed.
    Fed(FedError),
    /// An experiment configuration was invalid.
    InvalidConfig {
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Eda(e) => write!(f, "data generation error: {e}"),
            CoreError::Fed(e) => write!(f, "federated training error: {e}"),
            CoreError::InvalidConfig { reason } => write!(f, "invalid config: {reason}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Eda(e) => Some(e),
            CoreError::Fed(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EdaError> for CoreError {
    fn from(e: EdaError) -> Self {
        CoreError::Eda(e)
    }
}

impl From<FedError> for CoreError {
    fn from(e: FedError) -> Self {
        CoreError::Fed(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e: CoreError = EdaError::InvalidConfig { reason: "x".into() }.into();
        assert!(e.to_string().contains("data generation"));
        assert!(Error::source(&e).is_some());
        let e = CoreError::InvalidConfig {
            reason: "no methods".into(),
        };
        assert!(Error::source(&e).is_none());
    }
}
