//! Reference-implementation property tests for the metric estimators.
//!
//! The fast estimators in `rte-metrics` (rank-sum ROC AUC, threshold-sweep
//! average precision) are pinned against *naive but obviously correct*
//! references on random score/label vectors with heavy ties:
//!
//! - [`roc_auc`] vs the O(P·N) pairwise Mann-Whitney count, ties ½,
//! - [`average_precision`] vs the direct precision-at-positive-rank sum,
//! - [`roc_curve`] endpoint/monotonicity invariants and trapezoid-area
//!   agreement with the rank AUC.
//!
//! Ties are forced by quantizing scores to a handful of levels, the
//! regime where a naive implementation and a rank-based one diverge
//! first.

use proptest::prelude::*;

use rte_metrics::{average_precision, roc_auc, roc_curve};

/// Naive O(P·N) AUC: the fraction of (positive, negative) pairs ranked
/// correctly, tied pairs counted ½.
fn pairwise_auc(scores: &[f32], labels: &[bool]) -> f64 {
    let mut correct = 0.0f64;
    let mut pairs = 0.0f64;
    for (i, &si) in scores.iter().enumerate() {
        if !labels[i] {
            continue;
        }
        for (j, &sj) in scores.iter().enumerate() {
            if labels[j] {
                continue;
            }
            pairs += 1.0;
            if si > sj {
                correct += 1.0;
            } else if si == sj {
                correct += 0.5;
            }
        }
    }
    correct / pairs
}

/// Direct average precision: for every positive sample, the precision of
/// the prediction set `{j : score_j >= score_i}`, averaged over
/// positives. Algebraically identical to the threshold-sweep step sum
/// (each tied group contributes `ΔR · P_group`), but computed per sample
/// with no sweep state.
fn precision_at_rank_ap(scores: &[f32], labels: &[bool]) -> f64 {
    let positives = labels.iter().filter(|&&l| l).count();
    let mut sum = 0.0f64;
    for (i, &si) in scores.iter().enumerate() {
        if !labels[i] {
            continue;
        }
        let mut tp = 0usize;
        let mut fp = 0usize;
        for (j, &sj) in scores.iter().enumerate() {
            if sj >= si {
                if labels[j] {
                    tp += 1;
                } else {
                    fp += 1;
                }
            }
        }
        sum += tp as f64 / (tp + fp) as f64;
    }
    sum / positives as f64
}

/// Builds a quantized score vector (heavy ties, duplicated values) and a
/// label vector from raw uniform draws.
fn quantize(raw_scores: &[f64], raw_labels: &[u64], levels: usize) -> (Vec<f32>, Vec<bool>) {
    let scores: Vec<f32> = raw_scores
        .iter()
        .map(|&r| ((r * levels as f64).floor() / levels as f64) as f32)
        .collect();
    let labels: Vec<bool> = raw_labels.iter().map(|&b| b & 1 == 1).collect();
    (scores, labels)
}

fn both_classes(labels: &[bool]) -> bool {
    labels.iter().any(|&l| l) && labels.iter().any(|&l| !l)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Rank-sum AUC equals the pairwise reference on tie-heavy inputs.
    #[test]
    fn roc_auc_matches_pairwise_reference(
        raw_scores in collection::vec(0.0f64..1.0, 2usize..60),
        raw_labels in collection::vec(any::<u64>(), 60usize),
        levels in 1usize..8,
    ) {
        let (scores, labels) = quantize(&raw_scores, &raw_labels[..raw_scores.len()], levels);
        prop_assume!(both_classes(&labels));
        let fast = roc_auc(&scores, &labels).unwrap();
        let naive = pairwise_auc(&scores, &labels);
        prop_assert!(
            (fast - naive).abs() < 1e-9,
            "rank {fast} vs pairwise {naive} on {scores:?} / {labels:?}"
        );
    }

    /// Threshold-sweep AP equals the direct precision-at-rank sum.
    #[test]
    fn average_precision_matches_rank_sum_reference(
        raw_scores in collection::vec(0.0f64..1.0, 2usize..60),
        raw_labels in collection::vec(any::<u64>(), 60usize),
        levels in 1usize..8,
    ) {
        let (scores, labels) = quantize(&raw_scores, &raw_labels[..raw_scores.len()], levels);
        prop_assume!(labels.iter().any(|&l| l));
        let fast = average_precision(&scores, &labels).unwrap();
        let naive = precision_at_rank_ap(&scores, &labels);
        prop_assert!(
            (fast - naive).abs() < 1e-9,
            "sweep {fast} vs direct {naive} on {scores:?} / {labels:?}"
        );
    }

    /// The ROC curve starts at (0,0), ends at (1,1), and is monotone in
    /// FPR and TPR with strictly decreasing thresholds; its trapezoid
    /// area equals the rank AUC.
    #[test]
    fn roc_curve_invariants_hold(
        raw_scores in collection::vec(0.0f64..1.0, 2usize..60),
        raw_labels in collection::vec(any::<u64>(), 60usize),
        levels in 1usize..8,
    ) {
        let (scores, labels) = quantize(&raw_scores, &raw_labels[..raw_scores.len()], levels);
        prop_assume!(both_classes(&labels));
        let curve = roc_curve(&scores, &labels).unwrap();
        let first = curve.first().unwrap();
        let last = curve.last().unwrap();
        prop_assert_eq!(first.fpr, 0.0);
        prop_assert_eq!(first.tpr, 0.0);
        prop_assert_eq!(last.fpr, 1.0);
        prop_assert_eq!(last.tpr, 1.0);
        for w in curve.windows(2) {
            prop_assert!(w[1].fpr >= w[0].fpr, "FPR not monotone: {curve:?}");
            prop_assert!(w[1].tpr >= w[0].tpr, "TPR not monotone: {curve:?}");
            prop_assert!(
                w[1].threshold < w[0].threshold,
                "thresholds not strictly decreasing: {curve:?}"
            );
        }
        let auc = roc_auc(&scores, &labels).unwrap();
        let mut area = 0.0;
        for w in curve.windows(2) {
            area += (w[1].fpr - w[0].fpr) * (w[1].tpr + w[0].tpr) / 2.0;
        }
        prop_assert!((area - auc).abs() < 1e-9, "area {area} vs auc {auc}");
    }
}

/// Deterministic spot checks of the two references against hand-counted
/// values, so a bug in the *references* cannot silently weaken the
/// properties above.
#[test]
fn references_agree_with_hand_counts() {
    // pos {0.8, 0.3}, neg {0.9, 0.1}: 2 of 4 pairs correct.
    let scores = [0.8f32, 0.3, 0.9, 0.1];
    let labels = [true, true, false, false];
    assert_eq!(pairwise_auc(&scores, &labels), 0.5);
    // ranking pos, neg, pos, neg: AP = (1/2)(1/1 + 2/3).
    let scores = [0.9f32, 0.7, 0.5, 0.3];
    let labels = [true, false, true, false];
    assert!((precision_at_rank_ap(&scores, &labels) - (1.0 + 2.0 / 3.0) / 2.0).abs() < 1e-12);
    // All tied: every positive sees the full set → AP = prevalence,
    // AUC = 0.5 exactly.
    let scores = [0.5f32; 5];
    let labels = [true, false, true, false, false];
    assert_eq!(pairwise_auc(&scores, &labels), 0.5);
    assert!((precision_at_rank_ap(&scores, &labels) - 0.4).abs() < 1e-12);
}
