//! Average precision (area under the precision-recall curve).
//!
//! DRC hotspot maps are heavily imbalanced (hotspots are a minority of
//! tiles), where ROC AUC can look flattering; average precision weights
//! performance by the positive class and is the standard companion
//! metric. Not reported in the paper's tables, but exposed for downstream
//! users evaluating their own deployments.

use crate::MetricsError;

/// Average precision with the step-wise interpolation scikit-learn uses:
/// `AP = Σ (R_i − R_{i−1}) · P_i` sweeping the threshold from high to low.
///
/// Ties are handled as one group (all samples at a threshold enter
/// together).
///
/// ±inf scores are legal and sweep first (`+inf`) / last (`-inf`); the
/// internal sort uses [`f32::total_cmp`] and cannot panic on any score
/// vector. NaN is rejected up front with a typed error.
///
/// # Errors
///
/// Returns [`MetricsError`] for length mismatches, empty input, NaN
/// scores, or a label vector without any positives.
///
/// # Example
///
/// ```
/// use rte_metrics::average_precision;
///
/// // Perfect ranking: AP = 1.
/// let ap = average_precision(&[0.9, 0.8, 0.1], &[true, true, false])?;
/// assert!((ap - 1.0).abs() < 1e-12);
/// # Ok::<(), rte_metrics::MetricsError>(())
/// ```
pub fn average_precision(scores: &[f32], labels: &[bool]) -> Result<f64, MetricsError> {
    if scores.len() != labels.len() {
        return Err(MetricsError::LengthMismatch {
            scores: scores.len(),
            labels: labels.len(),
        });
    }
    if scores.is_empty() {
        return Err(MetricsError::Empty);
    }
    if scores.iter().any(|s| s.is_nan()) {
        return Err(MetricsError::NanScore);
    }
    let positives = labels.iter().filter(|&&l| l).count();
    if positives == 0 {
        return Err(MetricsError::SingleClass {
            positives: 0,
            negatives: labels.len(),
        });
    }
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    // Descending, panic-free total order; -0.0/+0.0 still form one tie
    // group via the `==` threshold walk below.
    idx.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]));
    let mut tp = 0usize;
    let mut fp = 0usize;
    let mut prev_recall = 0.0f64;
    let mut ap = 0.0f64;
    let mut i = 0usize;
    while i < idx.len() {
        let threshold = scores[idx[i]];
        while i < idx.len() && scores[idx[i]] == threshold {
            if labels[idx[i]] {
                tp += 1;
            } else {
                fp += 1;
            }
            i += 1;
        }
        let recall = tp as f64 / positives as f64;
        let precision = tp as f64 / (tp + fp) as f64;
        ap += (recall - prev_recall) * precision;
        prev_recall = recall;
    }
    Ok(ap)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_ranking_is_one() {
        let ap = average_precision(&[0.9, 0.8, 0.3, 0.2], &[true, true, false, false]).unwrap();
        assert!((ap - 1.0).abs() < 1e-12);
    }

    #[test]
    fn worst_ranking_equals_tail_precision() {
        // Positives ranked last: AP = Σ over positives of precision at
        // their positions = (1/3 + 2/4)/2 for one pos at rank 3 of 4…
        let ap = average_precision(&[0.9, 0.8, 0.3], &[false, false, true]).unwrap();
        assert!((ap - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn hand_computed_interleaved() {
        // ranking: pos, neg, pos, neg
        // after 1st (pos): R=0.5, P=1.0 → +0.5·1.0
        // after 3rd (pos): R=1.0, P=2/3 → +0.5·(2/3)
        let ap = average_precision(&[0.9, 0.7, 0.5, 0.3], &[true, false, true, false]).unwrap();
        assert!((ap - (0.5 + 0.5 * 2.0 / 3.0)).abs() < 1e-12);
    }

    #[test]
    fn all_tied_scores_give_base_rate() {
        // One threshold group containing everything: AP = prevalence.
        let ap = average_precision(&[0.5; 4], &[true, false, false, false]).unwrap();
        assert!((ap - 0.25).abs() < 1e-12);
    }

    #[test]
    fn random_scores_near_prevalence() {
        use rand_like::*;
        mod rand_like {
            pub struct Lcg(pub u64);
            impl Lcg {
                pub fn next_f32(&mut self) -> f32 {
                    self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
                    ((self.0 >> 33) as f32) / (u32::MAX >> 1) as f32
                }
            }
        }
        let mut rng = Lcg(42);
        let n = 5000;
        let scores: Vec<f32> = (0..n).map(|_| rng.next_f32()).collect();
        let labels: Vec<bool> = (0..n).map(|_| rng.next_f32() < 0.2).collect();
        let prevalence = labels.iter().filter(|&&l| l).count() as f64 / n as f64;
        let ap = average_precision(&scores, &labels).unwrap();
        assert!(
            (ap - prevalence).abs() < 0.05,
            "AP {ap} vs prevalence {prevalence}"
        );
    }

    #[test]
    fn errors() {
        assert!(average_precision(&[0.5], &[]).is_err());
        assert!(average_precision(&[f32::NAN], &[true]).is_err());
        assert!(average_precision(&[0.5, 0.4], &[false, false]).is_err());
        assert!(matches!(
            average_precision(&[], &[]),
            Err(MetricsError::Empty)
        ));
    }

    #[test]
    fn infinite_scores_sweep_at_the_extremes() {
        // +inf enters first: a positive there gives a perfect prefix.
        let ap = average_precision(
            &[f32::INFINITY, 0.5, f32::NEG_INFINITY],
            &[true, false, true],
        )
        .unwrap();
        // After +inf (pos): R=0.5, P=1 → +0.5. After -inf (pos):
        // R=1.0, P=2/3 → +0.5·(2/3).
        assert!((ap - (0.5 + 0.5 * 2.0 / 3.0)).abs() < 1e-12);
    }

    #[test]
    fn no_negatives_is_fine() {
        // Unlike ROC AUC, AP is defined with zero negatives (always 1).
        let ap = average_precision(&[0.5, 0.4], &[true, true]).unwrap();
        assert!((ap - 1.0).abs() < 1e-12);
    }
}
