//! Thresholded confusion-matrix statistics.

use crate::MetricsError;

/// Binary confusion matrix at a fixed decision threshold.
///
/// # Example
///
/// ```
/// use rte_metrics::ConfusionMatrix;
///
/// let cm = ConfusionMatrix::from_scores(&[0.9, 0.2, 0.7, 0.1],
///                                       &[true, false, false, false], 0.5)?;
/// assert_eq!(cm.true_positives, 1);
/// assert_eq!(cm.false_positives, 1);
/// assert_eq!(cm.accuracy(), 0.75);
/// # Ok::<(), rte_metrics::MetricsError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ConfusionMatrix {
    /// Positives predicted positive.
    pub true_positives: usize,
    /// Negatives predicted positive.
    pub false_positives: usize,
    /// Negatives predicted negative.
    pub true_negatives: usize,
    /// Positives predicted negative.
    pub false_negatives: usize,
}

impl ConfusionMatrix {
    /// Builds a confusion matrix by thresholding `scores` at `threshold`
    /// (`score >= threshold` ⇒ predicted positive).
    ///
    /// # Errors
    ///
    /// Returns [`MetricsError::LengthMismatch`] or
    /// [`MetricsError::NanScore`].
    pub fn from_scores(
        scores: &[f32],
        labels: &[bool],
        threshold: f32,
    ) -> Result<Self, MetricsError> {
        if scores.len() != labels.len() {
            return Err(MetricsError::LengthMismatch {
                scores: scores.len(),
                labels: labels.len(),
            });
        }
        if scores.iter().any(|s| s.is_nan()) {
            return Err(MetricsError::NanScore);
        }
        let mut cm = ConfusionMatrix::default();
        for (&s, &l) in scores.iter().zip(labels.iter()) {
            match (s >= threshold, l) {
                (true, true) => cm.true_positives += 1,
                (true, false) => cm.false_positives += 1,
                (false, false) => cm.true_negatives += 1,
                (false, true) => cm.false_negatives += 1,
            }
        }
        Ok(cm)
    }

    /// Total number of samples.
    pub fn total(&self) -> usize {
        self.true_positives + self.false_positives + self.true_negatives + self.false_negatives
    }

    /// Fraction of correct predictions (0 when empty).
    pub fn accuracy(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            (self.true_positives + self.true_negatives) as f64 / t as f64
        }
    }

    /// True-positive rate (recall); 0 when there are no positives.
    pub fn tpr(&self) -> f64 {
        let p = self.true_positives + self.false_negatives;
        if p == 0 {
            0.0
        } else {
            self.true_positives as f64 / p as f64
        }
    }

    /// False-positive rate; 0 when there are no negatives.
    pub fn fpr(&self) -> f64 {
        let n = self.false_positives + self.true_negatives;
        if n == 0 {
            0.0
        } else {
            self.false_positives as f64 / n as f64
        }
    }

    /// Precision; 0 when nothing was predicted positive.
    pub fn precision(&self) -> f64 {
        let pp = self.true_positives + self.false_positives;
        if pp == 0 {
            0.0
        } else {
            self.true_positives as f64 / pp as f64
        }
    }

    /// F1 score; 0 when precision + recall is 0.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.tpr();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infinite_scores_threshold_naturally() {
        // +inf >= t for every finite threshold; -inf never is.
        let cm =
            ConfusionMatrix::from_scores(&[f32::INFINITY, f32::NEG_INFINITY], &[true, false], 0.5)
                .unwrap();
        assert_eq!(cm.true_positives, 1);
        assert_eq!(cm.true_negatives, 1);
    }

    fn sample() -> ConfusionMatrix {
        ConfusionMatrix {
            true_positives: 8,
            false_positives: 2,
            true_negatives: 85,
            false_negatives: 5,
        }
    }

    #[test]
    fn derived_rates() {
        let cm = sample();
        assert_eq!(cm.total(), 100);
        assert!((cm.accuracy() - 0.93).abs() < 1e-12);
        assert!((cm.tpr() - 8.0 / 13.0).abs() < 1e-12);
        assert!((cm.fpr() - 2.0 / 87.0).abs() < 1e-12);
        assert!((cm.precision() - 0.8).abs() < 1e-12);
        let f1 = 2.0 * 0.8 * (8.0 / 13.0) / (0.8 + 8.0 / 13.0);
        assert!((cm.f1() - f1).abs() < 1e-12);
    }

    #[test]
    fn from_scores_thresholds_inclusively() {
        let cm = ConfusionMatrix::from_scores(&[0.5, 0.49], &[true, true], 0.5).unwrap();
        assert_eq!(cm.true_positives, 1);
        assert_eq!(cm.false_negatives, 1);
    }

    #[test]
    fn empty_is_all_zero() {
        let cm = ConfusionMatrix::from_scores(&[], &[], 0.5).unwrap();
        assert_eq!(cm.total(), 0);
        assert_eq!(cm.accuracy(), 0.0);
        assert_eq!(cm.f1(), 0.0);
    }

    #[test]
    fn errors() {
        assert!(ConfusionMatrix::from_scores(&[0.1], &[], 0.5).is_err());
        assert!(ConfusionMatrix::from_scores(&[f32::NAN], &[true], 0.5).is_err());
    }
}
