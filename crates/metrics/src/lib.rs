//! Evaluation metrics for the decentralized routability estimation
//! reproduction.
//!
//! The paper reports ROC AUC per client (Tables 3-5); [`roc_auc`]
//! implements the exact rank-based estimator with tie handling, and
//! [`ConfusionMatrix`] provides the thresholded counts the ROC curve is
//! built from.
//!
//! # Degenerate inputs and non-finite scores
//!
//! Every metric in this crate is **panic-free on arbitrary score
//! vectors** — a corrupted model emitting garbage must surface as a
//! typed [`MetricsError`], never a panic inside a sort:
//!
//! - mismatched lengths → [`MetricsError::LengthMismatch`],
//! - no samples at all → [`MetricsError::Empty`],
//! - any NaN score → [`MetricsError::NanScore`] (NaN carries no ranking
//!   information, so rank metrics are undefined),
//! - a single-class label vector → [`MetricsError::SingleClass`] where
//!   the metric is undefined (ROC AUC needs both classes; average
//!   precision needs at least one positive).
//!
//! **±inf scores are legal** and ordered by the IEEE total order:
//! `-inf` ranks below every finite score and `+inf` above, with midrank
//! tie handling applying to repeated infinities exactly as to repeated
//! finite values. Thresholded metrics compare them naturally
//! (`+inf >= t` for every finite `t`), and histograms clamp them into
//! the edge bins like any other out-of-range score.
//!
//! # Example
//!
//! ```
//! use rte_metrics::roc_auc;
//!
//! let scores = [0.9, 0.8, 0.3, 0.1];
//! let labels = [true, false, true, false];
//! let auc = roc_auc(&scores, &labels)?;
//! assert!((auc - 0.75).abs() < 1e-9);
//! # Ok::<(), rte_metrics::MetricsError>(())
//! ```

// Pure safe Rust; all workspace `unsafe` lives in `rte_tensor::simd`
// (rte-lint rule L1 enforces this).
#![forbid(unsafe_code)]

mod average_precision;
mod confusion;
mod histogram;
mod roc;

pub use average_precision::average_precision;
pub use confusion::ConfusionMatrix;
pub use histogram::{ScoreHistogram, DEFAULT_BINS};
pub use roc::{roc_auc, roc_curve, RocPoint};

use std::error::Error;
use std::fmt;

/// Error produced by metric computations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricsError {
    /// Scores and labels had different lengths.
    LengthMismatch {
        /// Number of scores provided.
        scores: usize,
        /// Number of labels provided.
        labels: usize,
    },
    /// AUC is undefined: the labels contain only one class.
    SingleClass {
        /// Number of positive labels observed.
        positives: usize,
        /// Number of negative labels observed.
        negatives: usize,
    },
    /// A score was NaN.
    NanScore,
    /// No samples were provided: every rank metric is undefined on an
    /// empty score vector.
    Empty,
}

impl fmt::Display for MetricsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetricsError::LengthMismatch { scores, labels } => {
                write!(f, "length mismatch: {scores} scores vs {labels} labels")
            }
            MetricsError::SingleClass {
                positives,
                negatives,
            } => write!(
                f,
                "AUC undefined with {positives} positives and {negatives} negatives"
            ),
            MetricsError::NanScore => write!(f, "scores contain NaN"),
            MetricsError::Empty => write!(f, "no samples provided"),
        }
    }
}

impl Error for MetricsError {}
