//! Class-conditional score histograms.
//!
//! An [`EvalReport`-style](crate) evaluation wants more than scalar
//! summaries: the *distribution* of scores per class shows how separable
//! the classifier's outputs are and where a deployment threshold would
//! land. [`ScoreHistogram`] bins scores into fixed equal-width buckets
//! with one count vector per class — pure integer state, so two
//! histograms computed on different thread counts compare exactly.

use crate::MetricsError;

/// Default bin count used by evaluation reports (64 buckets over `[0, 1]`
/// resolves a 0.5 deployment threshold exactly on a bin edge).
pub const DEFAULT_BINS: usize = 64;

/// Equal-width class-conditional histogram of prediction scores.
///
/// Scores outside `[lo, hi]` are clamped into the edge bins, so the
/// counts always sum to the sample count.
///
/// # Example
///
/// ```
/// use rte_metrics::ScoreHistogram;
///
/// let h = ScoreHistogram::from_scores(&[0.1, 0.9, 0.9], &[false, true, true], 4, 0.0, 1.0)?;
/// assert_eq!(h.bins(), 4);
/// assert_eq!(h.negatives()[0], 1); // 0.1 lands in [0, 0.25)
/// assert_eq!(h.positives()[3], 2); // both 0.9s land in [0.75, 1]
/// assert_eq!(h.total(), 3);
/// # Ok::<(), rte_metrics::MetricsError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ScoreHistogram {
    lo: f32,
    hi: f32,
    positives: Vec<u64>,
    negatives: Vec<u64>,
}

impl ScoreHistogram {
    /// Builds a histogram of `scores` split by `labels` into `bins`
    /// equal-width buckets over `[lo, hi]`.
    ///
    /// # Errors
    ///
    /// Returns [`MetricsError::LengthMismatch`] or
    /// [`MetricsError::NanScore`].
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `lo >= hi` (caller bugs, not data
    /// conditions).
    pub fn from_scores(
        scores: &[f32],
        labels: &[bool],
        bins: usize,
        lo: f32,
        hi: f32,
    ) -> Result<Self, MetricsError> {
        assert!(bins > 0, "ScoreHistogram: zero bins");
        assert!(lo < hi, "ScoreHistogram: empty range {lo}..{hi}");
        if scores.len() != labels.len() {
            return Err(MetricsError::LengthMismatch {
                scores: scores.len(),
                labels: labels.len(),
            });
        }
        if scores.iter().any(|s| s.is_nan()) {
            return Err(MetricsError::NanScore);
        }
        let mut positives = vec![0u64; bins];
        let mut negatives = vec![0u64; bins];
        let width = (hi - lo) / bins as f32;
        for (&s, &l) in scores.iter().zip(labels.iter()) {
            let raw = ((s - lo) / width).floor();
            let bin = (raw.max(0.0) as usize).min(bins - 1);
            if l {
                positives[bin] += 1;
            } else {
                negatives[bin] += 1;
            }
        }
        Ok(ScoreHistogram {
            lo,
            hi,
            positives,
            negatives,
        })
    }

    /// Number of buckets.
    pub fn bins(&self) -> usize {
        self.positives.len()
    }

    /// Per-bucket counts of positive-labelled samples.
    pub fn positives(&self) -> &[u64] {
        &self.positives
    }

    /// Per-bucket counts of negative-labelled samples.
    pub fn negatives(&self) -> &[u64] {
        &self.negatives
    }

    /// Lower edge of bucket `i` (clamping means edge buckets also hold
    /// out-of-range scores).
    ///
    /// # Panics
    ///
    /// Panics if `i > bins()`.
    pub fn edge(&self, i: usize) -> f32 {
        assert!(i <= self.bins(), "edge {i} out of range");
        self.lo + (self.hi - self.lo) * i as f32 / self.bins() as f32
    }

    /// Total number of samples counted.
    pub fn total(&self) -> u64 {
        self.positives.iter().sum::<u64>() + self.negatives.iter().sum::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_edges() {
        let scores = [0.0f32, 0.24, 0.25, 0.5, 0.99, 1.0];
        let labels = [true, false, true, false, true, false];
        let h = ScoreHistogram::from_scores(&scores, &labels, 4, 0.0, 1.0).unwrap();
        assert_eq!(h.positives(), &[1, 1, 0, 1]);
        assert_eq!(h.negatives(), &[1, 0, 1, 1]); // 1.0 clamps into the last bin
        assert_eq!(h.total(), 6);
        assert_eq!(h.edge(0), 0.0);
        assert_eq!(h.edge(2), 0.5);
        assert_eq!(h.edge(4), 1.0);
    }

    #[test]
    fn out_of_range_scores_clamp_to_edge_bins() {
        let h = ScoreHistogram::from_scores(&[-3.0, 7.0], &[false, true], 8, 0.0, 1.0).unwrap();
        assert_eq!(h.negatives()[0], 1);
        assert_eq!(h.positives()[7], 1);
        assert_eq!(h.total(), 2);
    }

    #[test]
    fn infinite_scores_clamp_to_edge_bins() {
        // ±inf behave as extreme out-of-range scores: they land in the
        // edge bins, so totals still account for every sample.
        let h = ScoreHistogram::from_scores(
            &[f32::NEG_INFINITY, f32::INFINITY, 0.5],
            &[false, true, true],
            8,
            0.0,
            1.0,
        )
        .unwrap();
        assert_eq!(h.negatives()[0], 1);
        assert_eq!(h.positives()[7], 1);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn empty_input_is_all_zero() {
        let h = ScoreHistogram::from_scores(&[], &[], 4, 0.0, 1.0).unwrap();
        assert_eq!(h.total(), 0);
        assert_eq!(h.bins(), 4);
    }

    #[test]
    fn errors() {
        assert!(matches!(
            ScoreHistogram::from_scores(&[0.5], &[], 4, 0.0, 1.0),
            Err(MetricsError::LengthMismatch { .. })
        ));
        assert!(matches!(
            ScoreHistogram::from_scores(&[f32::NAN], &[true], 4, 0.0, 1.0),
            Err(MetricsError::NanScore)
        ));
    }

    #[test]
    #[should_panic(expected = "zero bins")]
    fn zero_bins_is_a_caller_bug() {
        let _ = ScoreHistogram::from_scores(&[], &[], 0, 0.0, 1.0);
    }
}
