//! ROC curve and AUC.

use crate::MetricsError;

/// One operating point of a ROC curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RocPoint {
    /// False-positive rate at this threshold.
    pub fpr: f64,
    /// True-positive rate at this threshold.
    pub tpr: f64,
    /// Score threshold producing this point (predictions with
    /// `score >= threshold` count as positive).
    pub threshold: f64,
}

fn validate(scores: &[f32], labels: &[bool]) -> Result<(usize, usize), MetricsError> {
    if scores.len() != labels.len() {
        return Err(MetricsError::LengthMismatch {
            scores: scores.len(),
            labels: labels.len(),
        });
    }
    if scores.is_empty() {
        return Err(MetricsError::Empty);
    }
    if scores.iter().any(|s| s.is_nan()) {
        return Err(MetricsError::NanScore);
    }
    let positives = labels.iter().filter(|&&l| l).count();
    let negatives = labels.len() - positives;
    if positives == 0 || negatives == 0 {
        return Err(MetricsError::SingleClass {
            positives,
            negatives,
        });
    }
    Ok((positives, negatives))
}

/// Area under the ROC curve via the rank-sum (Mann-Whitney U) estimator
/// with midrank tie handling — exactly what scikit-learn computes.
///
/// `labels[i]` is `true` for a positive (hotspot) sample.
///
/// ±inf scores are legal and rank at the extremes (`-inf` below every
/// finite score, `+inf` above); repeated infinities tie at midrank like
/// any repeated value. The internal sort uses [`f32::total_cmp`], so no
/// score vector can panic it — NaN is rejected up front with a typed
/// error because NaN carries no ranking information.
///
/// # Errors
///
/// Returns [`MetricsError`] when lengths differ, the input is empty,
/// scores contain NaN, or only one class is present.
///
/// # Example
///
/// ```
/// use rte_metrics::roc_auc;
///
/// // Perfect ranking → AUC 1; inverted ranking → AUC 0.
/// assert_eq!(roc_auc(&[0.9, 0.1], &[true, false])?, 1.0);
/// assert_eq!(roc_auc(&[0.1, 0.9], &[true, false])?, 0.0);
/// # Ok::<(), rte_metrics::MetricsError>(())
/// ```
pub fn roc_auc(scores: &[f32], labels: &[bool]) -> Result<f64, MetricsError> {
    let (positives, negatives) = validate(scores, labels)?;
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    // `total_cmp` cannot panic whatever the input; `validate` already
    // rejected NaN, and the -0.0/+0.0 distinction it introduces is
    // erased by the `==` tie grouping below.
    idx.sort_by(|&a, &b| scores[a].total_cmp(&scores[b]));
    // Assign midranks over tied groups and sum ranks of positives.
    let mut rank_sum_pos = 0.0f64;
    let mut i = 0usize;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && scores[idx[j + 1]] == scores[idx[i]] {
            j += 1;
        }
        // Ranks are 1-based: group spans ranks i+1 ..= j+1.
        let midrank = (i + 1 + j + 1) as f64 / 2.0;
        for &k in &idx[i..=j] {
            if labels[k] {
                rank_sum_pos += midrank;
            }
        }
        i = j + 1;
    }
    let p = positives as f64;
    let n = negatives as f64;
    let u = rank_sum_pos - p * (p + 1.0) / 2.0;
    Ok(u / (p * n))
}

/// Full ROC curve: one [`RocPoint`] per distinct threshold, ordered by
/// increasing FPR, with the trivial `(0,0)` and `(1,1)` endpoints included.
///
/// # Errors
///
/// Same conditions as [`roc_auc`].
pub fn roc_curve(scores: &[f32], labels: &[bool]) -> Result<Vec<RocPoint>, MetricsError> {
    let (positives, negatives) = validate(scores, labels)?;
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    // Descending by score: sweep the threshold down. Panic-free total
    // order (see `roc_auc`).
    idx.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]));
    let mut points = vec![RocPoint {
        fpr: 0.0,
        tpr: 0.0,
        threshold: f64::INFINITY,
    }];
    let (mut tp, mut fp) = (0usize, 0usize);
    let mut i = 0usize;
    while i < idx.len() {
        let threshold = scores[idx[i]];
        // Consume the whole tied group before emitting a point.
        while i < idx.len() && scores[idx[i]] == threshold {
            if labels[idx[i]] {
                tp += 1;
            } else {
                fp += 1;
            }
            i += 1;
        }
        points.push(RocPoint {
            fpr: fp as f64 / negatives as f64,
            tpr: tp as f64 / positives as f64,
            threshold: threshold as f64,
        });
    }
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_and_inverted() {
        let s = [0.9f32, 0.8, 0.2, 0.1];
        let l = [true, true, false, false];
        assert_eq!(roc_auc(&s, &l).unwrap(), 1.0);
        let l_inv = [false, false, true, true];
        assert_eq!(roc_auc(&s, &l_inv).unwrap(), 0.0);
    }

    #[test]
    fn balanced_mixture_is_half() {
        // Positives {0.1, 0.4}, negatives {0.2, 0.3}: of the four
        // pos/neg pairs exactly two are correctly ordered → AUC 0.5.
        let s = [0.1f32, 0.2, 0.3, 0.4];
        let l = [true, false, false, true];
        assert_eq!(roc_auc(&s, &l).unwrap(), 0.5);
    }

    #[test]
    fn ties_get_midrank_credit() {
        // All scores equal → AUC must be exactly 0.5 regardless of labels.
        let s = [0.5f32; 6];
        let l = [true, false, true, false, false, true];
        assert_eq!(roc_auc(&s, &l).unwrap(), 0.5);
    }

    #[test]
    fn hand_computed_case() {
        // scores: pos {0.8, 0.3}, neg {0.9, 0.1}
        // pairs: (0.8 > 0.9)? no. (0.8 > 0.1) yes. (0.3>0.9) no. (0.3>0.1) yes.
        // U = 2 of 4 → AUC 0.5.
        let s = [0.8f32, 0.3, 0.9, 0.1];
        let l = [true, true, false, false];
        assert_eq!(roc_auc(&s, &l).unwrap(), 0.5);
    }

    #[test]
    fn errors() {
        assert!(matches!(
            roc_auc(&[0.1, 0.2], &[true]),
            Err(MetricsError::LengthMismatch { .. })
        ));
        assert!(matches!(
            roc_auc(&[0.1, 0.2], &[true, true]),
            Err(MetricsError::SingleClass { .. })
        ));
        assert!(matches!(
            roc_auc(&[f32::NAN, 0.2], &[true, false]),
            Err(MetricsError::NanScore)
        ));
        assert!(matches!(roc_auc(&[], &[]), Err(MetricsError::Empty)));
        assert!(matches!(roc_curve(&[], &[]), Err(MetricsError::Empty)));
    }

    #[test]
    fn infinite_scores_rank_at_the_extremes() {
        // +inf outranks every finite score, -inf is below all of them.
        let s = [f32::INFINITY, 0.5, f32::NEG_INFINITY];
        assert_eq!(roc_auc(&s, &[true, true, false]).unwrap(), 1.0);
        assert_eq!(roc_auc(&s, &[false, false, true]).unwrap(), 0.0);
        // Repeated infinities tie at midrank like any repeated value:
        // pairs (inf,inf) → ½, (inf,0.1) → 1, (0.2,inf) → 0,
        // (0.2,0.1) → 1, so U = 2.5 of 4.
        let tied = [f32::INFINITY, f32::INFINITY, 0.1, 0.2];
        assert_eq!(roc_auc(&tied, &[true, false, false, true]).unwrap(), 0.625);
        // The full curve handles them too (thresholds stay ordered).
        let curve = roc_curve(&s, &[true, true, false]).unwrap();
        assert_eq!(curve.last().unwrap().tpr, 1.0);
    }

    #[test]
    fn signed_zeros_are_one_tie_group() {
        // total_cmp orders -0.0 before +0.0; the tie grouping must still
        // treat them as one group (they compare equal), so labels split
        // across the two zeros get midrank credit.
        let s = [-0.0f32, 0.0, 1.0];
        let l = [true, false, true];
        let auc = roc_auc(&s, &l).unwrap();
        let auc_swapped = roc_auc(&[0.0f32, -0.0, 1.0], &l).unwrap();
        assert_eq!(auc, auc_swapped);
    }

    #[test]
    fn curve_endpoints_and_monotonicity() {
        let s = [0.9f32, 0.7, 0.7, 0.4, 0.2, 0.1];
        let l = [true, false, true, true, false, false];
        let curve = roc_curve(&s, &l).unwrap();
        assert_eq!(curve.first().unwrap().fpr, 0.0);
        assert_eq!(curve.first().unwrap().tpr, 0.0);
        assert_eq!(curve.last().unwrap().fpr, 1.0);
        assert_eq!(curve.last().unwrap().tpr, 1.0);
        for w in curve.windows(2) {
            assert!(w[1].fpr >= w[0].fpr);
            assert!(w[1].tpr >= w[0].tpr);
            assert!(w[1].threshold <= w[0].threshold);
        }
    }

    #[test]
    fn curve_trapezoid_matches_rank_auc() {
        let s = [0.95f32, 0.8, 0.7, 0.65, 0.5, 0.4, 0.3, 0.2];
        let l = [true, true, false, true, false, true, false, false];
        let auc = roc_auc(&s, &l).unwrap();
        let curve = roc_curve(&s, &l).unwrap();
        let mut area = 0.0;
        for w in curve.windows(2) {
            area += (w[1].fpr - w[0].fpr) * (w[1].tpr + w[0].tpr) / 2.0;
        }
        assert!((area - auc).abs() < 1e-12, "{area} vs {auc}");
    }

    #[test]
    fn auc_is_threshold_free() {
        // Any strictly monotone transform of scores leaves AUC unchanged.
        let s = [0.9f32, 0.8, 0.3, 0.1, 0.05];
        let l = [true, false, true, false, true];
        let a1 = roc_auc(&s, &l).unwrap();
        let s2: Vec<f32> = s.iter().map(|&x| x * x * 10.0).collect();
        let a2 = roc_auc(&s2, &l).unwrap();
        assert_eq!(a1, a2);
    }
}
