//! Transports: how frames move between a coordinator and its clients.
//!
//! A [`Transport`] is one bidirectional, ordered, reliable frame pipe.
//! Two backends ship here:
//!
//! - [`ChannelTransport`] — an in-process pair over `std::sync::mpsc`,
//!   the reference backend. Frames still round-trip through the full
//!   encoder/decoder, so the wire format is exercised even in-process.
//! - [`UdsTransport`] (Unix) — a Unix-domain socket stream, the
//!   process-boundary backend the `rte-coordinator`/`rte-client`
//!   binaries speak.
//!
//! [`FanIn`] merges several transports into one wall-clock arrival-order
//! stream. It exists *only* for the documented non-deterministic
//! wall-clock async mode (determinism contract rule 8's opt-out): it
//! spawns one reader thread per link, which is a sanctioned exception to
//! lint rule L5 — deterministic code never touches it.

use std::io::{BufReader, BufWriter, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::Arc;
use std::time::Duration;

use crate::error::NetError;
use crate::frame::Frame;

/// One bidirectional, ordered, reliable frame pipe.
pub trait Transport {
    /// Sends one frame (blocking until it is handed to the pipe).
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Closed`] when the peer hung up, or any
    /// encoding/I/O error.
    fn send(&mut self, frame: &Frame) -> Result<(), NetError>;

    /// Receives the next frame (blocking).
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Closed`] when the peer hung up, or any
    /// decoding/I/O error.
    fn recv(&mut self) -> Result<Frame, NetError>;

    /// Receives the next frame, giving up after `timeout` with
    /// [`NetError::Timeout`]. A stalled or half-dead peer must never
    /// wedge the caller forever — every coordinator-side read goes
    /// through this path.
    ///
    /// The default implementation falls back to the blocking [`recv`]
    /// (so external impls keep compiling) — backends that can honour a
    /// deadline override it.
    ///
    /// # Errors
    ///
    /// [`NetError::Timeout`] when the deadline elapses, otherwise the
    /// same errors as [`recv`].
    ///
    /// [`recv`]: Transport::recv
    fn recv_timeout(&mut self, timeout: Duration) -> Result<Frame, NetError> {
        let _ = timeout;
        self.recv()
    }

    /// Sends one frame, giving up after `timeout` with
    /// [`NetError::Timeout`]. Defaults to the blocking [`send`].
    ///
    /// # Errors
    ///
    /// [`NetError::Timeout`] when the deadline elapses, otherwise the
    /// same errors as [`send`].
    ///
    /// [`send`]: Transport::send
    fn send_timeout(&mut self, frame: &Frame, timeout: Duration) -> Result<(), NetError> {
        let _ = timeout;
        self.send(frame)
    }
}

/// In-process transport half over `std::sync::mpsc`, carrying *encoded*
/// frame bytes so the codec is on the path even without a socket.
pub struct ChannelTransport {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
}

impl ChannelTransport {
    /// Creates a connected pair of transport halves.
    pub fn pair() -> (ChannelTransport, ChannelTransport) {
        let (a_tx, b_rx) = channel();
        let (b_tx, a_rx) = channel();
        (
            ChannelTransport { tx: a_tx, rx: a_rx },
            ChannelTransport { tx: b_tx, rx: b_rx },
        )
    }

    /// Receives the next frame without blocking; `Ok(None)` when the
    /// queue is currently empty (single-threaded pumps poll with this).
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Closed`] when the peer hung up, or a decode
    /// error for damaged bytes.
    pub fn try_recv(&mut self) -> Result<Option<Frame>, NetError> {
        match self.rx.try_recv() {
            Ok(bytes) => Ok(Some(decode_exact(&bytes)?)),
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(NetError::Closed),
        }
    }
}

/// Decodes a buffer that must hold exactly one frame.
fn decode_exact(bytes: &[u8]) -> Result<Frame, NetError> {
    let (frame, used) = Frame::decode(bytes)?;
    if used != bytes.len() {
        return Err(NetError::Protocol {
            reason: format!("{} trailing bytes after frame", bytes.len() - used),
        });
    }
    Ok(frame)
}

impl Transport for ChannelTransport {
    fn send(&mut self, frame: &Frame) -> Result<(), NetError> {
        let bytes = frame.encode()?;
        self.tx.send(bytes).map_err(|_| NetError::Closed)
    }

    fn recv(&mut self) -> Result<Frame, NetError> {
        let bytes = self.rx.recv().map_err(|_| NetError::Closed)?;
        decode_exact(&bytes)
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Frame, NetError> {
        match self.rx.recv_timeout(timeout) {
            Ok(bytes) => decode_exact(&bytes),
            Err(RecvTimeoutError::Timeout) => Err(NetError::Timeout),
            Err(RecvTimeoutError::Disconnected) => Err(NetError::Closed),
        }
    }

    // `send` on an unbounded channel never blocks, so the default
    // `send_timeout` fallback is already deadline-correct here.
}

/// Unix-domain-socket transport: the process-boundary backend.
#[cfg(unix)]
#[derive(Debug)]
pub struct UdsTransport {
    reader: BufReader<std::os::unix::net::UnixStream>,
    writer: BufWriter<std::os::unix::net::UnixStream>,
}

#[cfg(unix)]
impl UdsTransport {
    /// Wraps a connected stream (cloning the descriptor for the read
    /// half so reads and writes buffer independently).
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Io`] when the descriptor cannot be cloned.
    pub fn from_stream(stream: std::os::unix::net::UnixStream) -> Result<Self, NetError> {
        let read_half = stream.try_clone()?;
        Ok(UdsTransport {
            reader: BufReader::new(read_half),
            writer: BufWriter::new(stream),
        })
    }

    /// Connects to the socket at `path`.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Io`] when the connection fails.
    pub fn connect(path: impl AsRef<std::path::Path>) -> Result<Self, NetError> {
        Self::from_stream(std::os::unix::net::UnixStream::connect(path)?)
    }

    /// Clones the underlying socket into a second transport handle, for
    /// the wall-clock split: the original goes into a [`FanIn`] (read
    /// side) while the clone stays with the coordinator for sends.
    /// Receiving on both handles concurrently would split the byte
    /// stream between two buffers — treat the clone as write-only.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Io`] when the descriptor cannot be cloned.
    pub fn duplicate(&self) -> Result<Self, NetError> {
        Self::from_stream(self.writer.get_ref().try_clone()?)
    }
}

#[cfg(unix)]
impl Transport for UdsTransport {
    fn send(&mut self, frame: &Frame) -> Result<(), NetError> {
        frame.write_to(&mut self.writer)?;
        self.writer.flush()?;
        Ok(())
    }

    fn recv(&mut self) -> Result<Frame, NetError> {
        Frame::read_from(&mut self.reader)
    }

    /// Deadline via the socket's read timeout. A timeout that fires
    /// *mid-frame* leaves the byte stream desynchronized — the caller
    /// must treat the transport as dead and reconnect, never resume
    /// reading on it (the retry layer does exactly that).
    fn recv_timeout(&mut self, timeout: Duration) -> Result<Frame, NetError> {
        // A zero Duration would mean "no timeout" to the OS; clamp up.
        let timeout = timeout.max(Duration::from_millis(1));
        self.reader.get_ref().set_read_timeout(Some(timeout))?;
        let result = Frame::read_from(&mut self.reader);
        let _ = self.reader.get_ref().set_read_timeout(None);
        result
    }

    fn send_timeout(&mut self, frame: &Frame, timeout: Duration) -> Result<(), NetError> {
        let timeout = timeout.max(Duration::from_millis(1));
        self.writer.get_ref().set_write_timeout(Some(timeout))?;
        let result = frame
            .write_to(&mut self.writer)
            .and_then(|()| self.writer.flush().map_err(NetError::from));
        let _ = self.writer.get_ref().set_write_timeout(None);
        result
    }
}

/// Listening side of the UDS backend.
#[cfg(unix)]
pub struct UdsListener {
    listener: std::os::unix::net::UnixListener,
}

#[cfg(unix)]
impl UdsListener {
    /// Binds a fresh socket at `path` (removing a stale file first, so a
    /// crashed previous run cannot wedge the address).
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Io`] when the bind fails.
    pub fn bind(path: impl AsRef<std::path::Path>) -> Result<Self, NetError> {
        let path = path.as_ref();
        let _ = std::fs::remove_file(path);
        Ok(UdsListener {
            listener: std::os::unix::net::UnixListener::bind(path)?,
        })
    }

    /// Accepts the next client connection (blocking).
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Io`] when the accept fails.
    pub fn accept(&self) -> Result<UdsTransport, NetError> {
        let (stream, _) = self.listener.accept()?;
        UdsTransport::from_stream(stream)
    }

    /// Accepts the next client connection, giving up after `timeout`
    /// with [`NetError::Timeout`] — so an accept loop whose fleet never
    /// fully arrives can shut down instead of wedging forever.
    ///
    /// Implemented by polling a non-blocking accept every few
    /// milliseconds; the listener is restored to blocking mode before
    /// returning.
    ///
    /// # Errors
    ///
    /// [`NetError::Timeout`] when the deadline elapses, otherwise
    /// [`NetError::Io`].
    pub fn accept_timeout(&self, timeout: Duration) -> Result<UdsTransport, NetError> {
        const POLL: Duration = Duration::from_millis(5);
        self.listener.set_nonblocking(true)?;
        let result = (|| {
            let mut budget = timeout;
            loop {
                match self.listener.accept() {
                    Ok((stream, _)) => {
                        stream.set_nonblocking(false)?;
                        return UdsTransport::from_stream(stream);
                    }
                    Err(e)
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut =>
                    {
                        if budget.is_zero() {
                            return Err(NetError::Timeout);
                        }
                        let step = POLL.min(budget);
                        std::thread::sleep(step);
                        budget = budget.saturating_sub(step);
                    }
                    Err(e) => return Err(NetError::from(e)),
                }
            }
        })();
        let _ = self.listener.set_nonblocking(false);
        result
    }
}

/// Wall-clock arrival-order fan-in over several transports.
///
/// **This is the non-deterministic opt-out.** Each link gets a reader
/// thread; frames surface in true arrival order, so two runs of the
/// same experiment can aggregate in different orders. Deterministic mode
/// (the default everywhere) never constructs one of these — the seeded
/// virtual clock replays a fixed order instead.
pub struct FanIn {
    rx: Receiver<(usize, Result<Frame, NetError>)>,
    links: usize,
    stop: Arc<AtomicBool>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl FanIn {
    /// How often reader threads surface from their link to check the
    /// stop flag. Pure wall-clock machinery (this whole type is the
    /// rule-8 opt-out), so the cadence carries no determinism weight.
    const POLL: Duration = Duration::from_millis(20);

    /// Consumes `links` and starts one reader thread per link. Threads
    /// exit when their link closes or errors terminally (the terminal
    /// result is forwarded first), or when the fan-in is dropped —
    /// readers poll with [`Transport::recv_timeout`] so a stop request
    /// is honoured even while a link is silent, and `Drop` joins every
    /// thread: no leaked readers outlive the fan-in.
    pub fn new<T: Transport + Send + 'static>(links: Vec<T>) -> Self {
        let (tx, rx) = channel();
        let n = links.len();
        let stop = Arc::new(AtomicBool::new(false));
        let mut handles = Vec::with_capacity(n);
        for (index, mut link) in links.into_iter().enumerate() {
            let tx = tx.clone();
            let stop = Arc::clone(&stop);
            // rte-lint: allow(L5) sanctioned wall-clock fan-in: one reader
            // thread per link, used only by the documented non-deterministic
            // async opt-out, never by deterministic mode.
            handles.push(std::thread::spawn(move || loop {
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                let item = match link.recv_timeout(Self::POLL) {
                    Err(NetError::Timeout) => continue,
                    item => item,
                };
                let terminal = item.is_err();
                if tx.send((index, item)).is_err() || terminal {
                    break;
                }
            }));
        }
        FanIn {
            rx,
            links: n,
            stop,
            handles,
        }
    }

    /// Number of links this fan-in was built over.
    pub fn links(&self) -> usize {
        self.links
    }

    /// The next `(link index, frame)` in wall-clock arrival order.
    ///
    /// # Errors
    ///
    /// Returns the failing link's error (with its index) or
    /// [`NetError::Closed`] when every link has finished.
    pub fn recv_any(&mut self) -> Result<(usize, Frame), NetError> {
        match self.rx.recv() {
            Ok((index, Ok(frame))) => Ok((index, frame)),
            Ok((_, Err(e))) => Err(e),
            Err(_) => Err(NetError::Closed),
        }
    }

    /// Signals every reader thread to stop and joins them. Called by
    /// `Drop`; exposed so tests can assert the threads are really gone.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for FanIn {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_pair_round_trips() {
        let (mut a, mut b) = ChannelTransport::pair();
        let frame = Frame::new(1, 0, 0, b"ping".to_vec());
        a.send(&frame).unwrap();
        assert_eq!(b.recv().unwrap(), frame);
        let reply = Frame::new(2, 1, 0, b"pong".to_vec());
        b.send(&reply).unwrap();
        assert_eq!(a.try_recv().unwrap(), Some(reply));
        assert_eq!(a.try_recv().unwrap(), None);
    }

    #[test]
    fn dropped_peer_is_closed() {
        let (mut a, b) = ChannelTransport::pair();
        drop(b);
        assert_eq!(
            a.send(&Frame::new(0, 0, 0, Vec::new())).unwrap_err(),
            NetError::Closed
        );
        assert_eq!(a.recv().unwrap_err(), NetError::Closed);
    }

    #[cfg(unix)]
    #[test]
    fn uds_round_trips_across_a_socket() {
        let dir = std::env::temp_dir().join(format!("rte-net-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("uds-roundtrip.sock");
        let listener = UdsListener::bind(&path).unwrap();
        let client = std::thread::spawn({
            let path = path.clone();
            move || {
                let mut t = UdsTransport::connect(&path).unwrap();
                t.send(&Frame::new(1, 5, 0, b"hello".to_vec())).unwrap();
                t.recv().unwrap()
            }
        });
        let mut server_side = listener.accept().unwrap();
        let got = server_side.recv().unwrap();
        assert_eq!(got.sender, 5);
        assert_eq!(got.payload, b"hello");
        server_side
            .send(&Frame::new(2, 0, 0, b"welcome".to_vec()))
            .unwrap();
        let reply = client.join().unwrap();
        assert_eq!(reply.payload, b"welcome");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fan_in_surfaces_every_frame() {
        let (mut near_a, far_a) = ChannelTransport::pair();
        let (mut near_b, far_b) = ChannelTransport::pair();
        near_a.send(&Frame::new(1, 1, 0, b"a".to_vec())).unwrap();
        near_b.send(&Frame::new(1, 2, 0, b"b".to_vec())).unwrap();
        let mut fan = FanIn::new(vec![far_a, far_b]);
        assert_eq!(fan.links(), 2);
        let mut seen = Vec::new();
        for _ in 0..2 {
            let (_, frame) = fan.recv_any().unwrap();
            seen.push(frame.sender);
        }
        seen.sort_unstable();
        assert_eq!(seen, vec![1, 2]);
        drop(near_a);
        drop(near_b);
        assert!(fan.recv_any().is_err());
    }

    #[test]
    fn channel_recv_timeout_times_out_then_delivers() {
        let (mut a, mut b) = ChannelTransport::pair();
        assert_eq!(
            b.recv_timeout(Duration::from_millis(10)).unwrap_err(),
            NetError::Timeout
        );
        let frame = Frame::new(1, 3, 7, b"late".to_vec());
        a.send(&frame).unwrap();
        assert_eq!(b.recv_timeout(Duration::from_millis(10)).unwrap(), frame);
        drop(a);
        assert_eq!(
            b.recv_timeout(Duration::from_millis(10)).unwrap_err(),
            NetError::Closed
        );
    }

    #[cfg(unix)]
    #[test]
    fn uds_recv_timeout_survives_a_silent_peer() {
        let dir = std::env::temp_dir().join(format!("rte-net-to-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("uds-timeout.sock");
        let listener = UdsListener::bind(&path).unwrap();
        // The client connects and then says nothing at all.
        let silent = UdsTransport::connect(&path).unwrap();
        let mut server_side = listener.accept().unwrap();
        assert_eq!(
            server_side
                .recv_timeout(Duration::from_millis(30))
                .unwrap_err(),
            NetError::Timeout
        );
        // The transport is still usable once the peer wakes up (the
        // timeout fired between frames, not mid-frame).
        let mut silent = silent;
        silent
            .send(&Frame::new(1, 9, 0, b"awake".to_vec()))
            .unwrap();
        let got = server_side.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(got.payload, b"awake");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[cfg(unix)]
    #[test]
    fn accept_timeout_gives_up_without_a_client() {
        let dir = std::env::temp_dir().join(format!("rte-net-acc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("uds-accept.sock");
        let listener = UdsListener::bind(&path).unwrap();
        assert_eq!(
            listener
                .accept_timeout(Duration::from_millis(20))
                .unwrap_err(),
            NetError::Timeout
        );
        // A real client still gets through afterwards.
        let joiner = std::thread::spawn({
            let path = path.clone();
            move || UdsTransport::connect(&path).unwrap()
        });
        let accepted = listener.accept_timeout(Duration::from_secs(5));
        assert!(accepted.is_ok());
        drop(joiner.join().unwrap());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fan_in_joins_its_readers_on_drop() {
        // Peers stay open and silent: without the stop flag + timeout
        // polling, the reader threads would block forever in `recv` and
        // leak past the fan-in's lifetime.
        let (near_a, far_a) = ChannelTransport::pair();
        let (near_b, far_b) = ChannelTransport::pair();
        let mut fan = FanIn::new(vec![far_a, far_b]);
        assert_eq!(fan.handles.len(), 2);
        fan.shutdown();
        assert!(fan.handles.is_empty(), "shutdown joins every reader");
        // Dropping after an explicit shutdown is a no-op, and the silent
        // peers were never required to close first.
        drop(fan);
        drop(near_a);
        drop(near_b);
    }
}
