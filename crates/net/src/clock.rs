//! Clocks for async round scheduling.
//!
//! Determinism contract rule 8: asynchronous federation is driven by a
//! **seeded virtual clock** — arrival times are drawn from a named RNG
//! stream and replayed through a deterministic event queue, so the
//! arrival *order* (the only thing aggregation depends on) is a pure
//! function of the seed. CI pins async outcomes byte-for-byte because
//! nothing on this path reads the machine clock.
//!
//! [`WallClock`] is the documented opt-out: real elapsed time, real
//! nondeterminism. It is the sanctioned exception to lint rule L4 in
//! this crate and nothing deterministic may depend on it.

use std::collections::BTreeMap;

/// SplitMix64 — the stream-splitting generator (same constants as
/// `rte_tensor::rng`, restated here so this crate stays dependency-free).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[lo, hi]` (inclusive; `lo` when the range is
    /// degenerate). Modulo bias is irrelevant here — these are latency
    /// *shapes* for a simulator, not statistics.
    pub fn next_range(&mut self, lo: u64, hi: u64) -> u64 {
        if hi <= lo {
            return lo;
        }
        lo + self.next_u64() % (hi - lo + 1)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn bernoulli(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        // Compare against the top 53 bits as a uniform in [0, 1).
        let u = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        u < p
    }
}

/// A deterministic discrete-event queue keyed by `(tick, lane, seq)`.
///
/// `lane` is a caller-chosen tie-break (client index, by convention):
/// two events at the same tick pop in lane order, and two events on the
/// same `(tick, lane)` pop in insertion order via the internal sequence
/// number — so the pop order is a pure function of the pushes, never of
/// hash order or wall-clock interleaving.
#[derive(Debug)]
pub struct EventQueue<T> {
    events: BTreeMap<(u64, u64, u64), T>,
    seq: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            events: BTreeMap::new(),
            seq: 0,
        }
    }

    /// Schedules `event` at `tick` on `lane`.
    pub fn push(&mut self, tick: u64, lane: u64, event: T) {
        let key = (tick, lane, self.seq);
        self.seq += 1;
        self.events.insert(key, event);
    }

    /// Pops the earliest event: `(tick, lane, event)`.
    pub fn pop(&mut self) -> Option<(u64, u64, T)> {
        let key = *self.events.keys().next()?;
        let event = self.events.remove(&key)?;
        Some((key.0, key.1, event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// The virtual clock: a monotone tick counter advanced by the event
/// loop, never by the machine. Rule 8's deterministic time source.
#[derive(Debug, Clone, Default)]
pub struct VirtualClock {
    now: u64,
}

impl VirtualClock {
    /// Creates a clock at tick zero.
    pub fn new() -> Self {
        VirtualClock { now: 0 }
    }

    /// Current tick.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Advances to `tick` (monotone: earlier values are ignored, so a
    /// buggy caller cannot move time backwards).
    pub fn advance_to(&mut self, tick: u64) {
        if tick > self.now {
            self.now = tick;
        }
    }
}

/// Real elapsed time in milliseconds — **the documented opt-out** from
/// rule 8. Only the wall-clock async mode reads this; everything else
/// in the workspace is forbidden from it by lint rule L4 (this file is
/// the sanctioned exception).
pub struct WallClock {
    start: std::time::Instant,
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl WallClock {
    /// Starts the clock now.
    pub fn new() -> Self {
        WallClock {
            // rte-lint: allow(L4) sanctioned wall-clock site: the
            // non-deterministic async opt-out measures real latency here.
            start: std::time::Instant::now(),
        }
    }

    /// Milliseconds elapsed since the clock was created.
    pub fn elapsed_ms(&self) -> u64 {
        // rte-lint: allow(L4) sanctioned wall-clock site (see `new`).
        self.start.elapsed().as_millis() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_bounded() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut rng = SplitMix64::new(1);
        for _ in 0..1000 {
            let v = rng.next_range(3, 9);
            assert!((3..=9).contains(&v));
        }
        assert_eq!(rng.next_range(5, 5), 5);
        assert_eq!(rng.next_range(9, 3), 9);
        assert!(!rng.bernoulli(0.0));
        assert!(rng.bernoulli(1.0));
    }

    #[test]
    fn event_queue_pops_in_tick_lane_insertion_order() {
        let mut q = EventQueue::new();
        q.push(5, 2, "late-high-lane");
        q.push(5, 1, "late-low-lane");
        q.push(1, 9, "early");
        q.push(5, 1, "late-low-lane-second");
        assert_eq!(q.len(), 4);
        assert_eq!(q.pop().unwrap(), (1, 9, "early"));
        assert_eq!(q.pop().unwrap(), (5, 1, "late-low-lane"));
        assert_eq!(q.pop().unwrap(), (5, 1, "late-low-lane-second"));
        assert_eq!(q.pop().unwrap(), (5, 2, "late-high-lane"));
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }

    #[test]
    fn virtual_clock_is_monotone() {
        let mut clock = VirtualClock::new();
        assert_eq!(clock.now(), 0);
        clock.advance_to(10);
        clock.advance_to(3);
        assert_eq!(clock.now(), 10);
    }

    #[test]
    fn wall_clock_advances() {
        let clock = WallClock::new();
        // Cannot assert real elapsed time deterministically; only that
        // the reading is well-formed (non-panicking, monotone-ish).
        let a = clock.elapsed_ms();
        let b = clock.elapsed_ms();
        assert!(b >= a);
    }
}
