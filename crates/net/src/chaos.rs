//! Seeded fault injection — determinism contract rule 9.
//!
//! [`ChaosTransport`] wraps any [`Transport`] and misbehaves on
//! purpose: frames are dropped, duplicated, reordered through a bounded
//! buffer, corrupted byte-wise (the frame CRCs must catch every one as
//! a typed error), and delayed on a [`VirtualClock`]. Every decision is
//! drawn from a [`SplitMix64`] stream derived from
//! `(chaos_seed, lane, direction, seq)` — disjoint from the training
//! RNG and from each other — so a failure schedule is a pure function
//! of the seed: same seed, same faults, bit for bit, on any machine.
//!
//! Corruption is injected on the *receive* side, after the wire and
//! before the decoder: the frame is re-encoded, one deterministically
//! chosen bit is flipped, and the damaged bytes go through the real
//! [`Frame::decode`] path. Whatever typed error the decoder raises
//! ([`NetError::HeaderCrc`], [`NetError::PayloadCrc`],
//! [`NetError::BadMagic`], …) is what the caller sees — chaos never
//! invents an error class the hostile-bytes suite hasn't already
//! pinned. (Injecting on the send side would be a self-consistent
//! re-encode: the CRCs would cover the damaged bytes and nothing would
//! ever be caught.)

use std::collections::VecDeque;
use std::time::Duration;

use crate::clock::{SplitMix64, VirtualClock};
use crate::error::NetError;
use crate::frame::Frame;
use crate::transport::Transport;

/// Domain salt separating chaos decisions from every other named RNG
/// stream in the workspace (training, scenario, clock, retry jitter).
const CHAOS_SALT: u64 = 0x5254_4543_4841_0009; // "RTECHA" + rule 9

/// Direction tag for coordinator→wire traffic (`send` calls).
const DIR_SEND: u64 = 1;
/// Direction tag for wire→caller traffic (`recv` calls).
const DIR_RECV: u64 = 2;

/// The fault palette: per-frame probabilities and latency bounds.
///
/// All probabilities are independent per `(direction, seq)` draw; the
/// default is all-zero (a no-op wrapper that delivers every frame
/// untouched, pinned by test).
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosConfig {
    /// Seed for every decision stream this wrapper draws.
    pub seed: u64,
    /// Probability a frame is silently lost.
    pub drop_p: f64,
    /// Probability a delivered frame is delivered twice.
    pub dup_p: f64,
    /// Probability a received frame is parked in the reorder buffer and
    /// delivered after a later frame.
    pub reorder_p: f64,
    /// Bound on the reorder buffer — a parked frame is delayed by at
    /// most this many delivered frames (0 disables reordering).
    pub reorder_window: usize,
    /// Probability a received frame has one bit flipped before decode.
    pub corrupt_p: f64,
    /// Minimum injected latency, in virtual-clock ticks per frame.
    pub latency_min: u64,
    /// Maximum injected latency, in virtual-clock ticks per frame.
    pub latency_max: u64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 0,
            drop_p: 0.0,
            dup_p: 0.0,
            reorder_p: 0.0,
            reorder_window: 4,
            corrupt_p: 0.0,
            latency_min: 0,
            latency_max: 0,
        }
    }
}

impl ChaosConfig {
    /// True when every fault probability and latency bound is zero —
    /// the wrapper is then a transparent pass-through.
    pub fn is_noop(&self) -> bool {
        self.drop_p <= 0.0
            && self.dup_p <= 0.0
            && self.reorder_p <= 0.0
            && self.corrupt_p <= 0.0
            && self.latency_max == 0
    }

    /// Rejects probabilities outside `[0, 1]` and inverted latency
    /// bounds with a typed error.
    ///
    /// # Errors
    ///
    /// [`NetError::Protocol`] naming the offending field.
    pub fn validate(&self) -> Result<(), NetError> {
        for (name, p) in [
            ("drop_p", self.drop_p),
            ("dup_p", self.dup_p),
            ("reorder_p", self.reorder_p),
            ("corrupt_p", self.corrupt_p),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(NetError::Protocol {
                    reason: format!("chaos {name} = {p} is outside [0, 1]"),
                });
            }
        }
        if self.latency_min > self.latency_max {
            return Err(NetError::Protocol {
                reason: format!(
                    "chaos latency_min {} exceeds latency_max {}",
                    self.latency_min, self.latency_max
                ),
            });
        }
        Ok(())
    }
}

/// Counters for every fault the wrapper injected — the observability
/// half of rule 9 (the `table8_chaos` bench renders these).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// Frames silently lost (both directions).
    pub drops: u64,
    /// Frames delivered twice.
    pub dups: u64,
    /// Frames parked in the reorder buffer.
    pub reorders: u64,
    /// Frames with an injected bit flip (each surfaced a typed error).
    pub corruptions: u64,
    /// Total virtual-clock ticks of injected latency.
    pub latency_ticks: u64,
    /// Frames the caller sent (before any fault decision).
    pub frames_sent: u64,
    /// Frames actually delivered to the caller by `recv`.
    pub frames_delivered: u64,
}

/// A [`Transport`] decorator that injects seeded faults (rule 9).
///
/// `lane` separates the streams of several wrappers sharing one seed —
/// by convention the client index, mirroring [`crate::EventQueue`]'s
/// lane tie-break.
pub struct ChaosTransport<T: Transport> {
    inner: T,
    config: ChaosConfig,
    lane: u64,
    send_seq: u64,
    recv_seq: u64,
    /// Frames ready to hand to the caller ahead of the wire.
    ready: VecDeque<Frame>,
    /// The bounded reorder buffer.
    hold: VecDeque<Frame>,
    clock: VirtualClock,
    stats: ChaosStats,
}

impl<T: Transport> ChaosTransport<T> {
    /// Wraps `inner` with the fault palette in `config`.
    ///
    /// # Errors
    ///
    /// [`NetError::Protocol`] when the config is malformed (probability
    /// outside `[0, 1]`, inverted latency bounds).
    pub fn new(inner: T, config: ChaosConfig, lane: u64) -> Result<Self, NetError> {
        config.validate()?;
        Ok(ChaosTransport {
            inner,
            config,
            lane,
            send_seq: 0,
            recv_seq: 0,
            ready: VecDeque::new(),
            hold: VecDeque::new(),
            clock: VirtualClock::new(),
            stats: ChaosStats::default(),
        })
    }

    /// The fault counters so far.
    pub fn stats(&self) -> &ChaosStats {
        &self.stats
    }

    /// The virtual clock carrying the injected latency.
    pub fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    /// Unwraps the inner transport, discarding chaos state.
    pub fn into_inner(self) -> T {
        self.inner
    }

    /// The decision stream for one `(direction, seq)` cell: SplitMix64
    /// chained over `(seed ⊕ salt, lane, direction, seq)` — one
    /// derivation point, the same stream-splitting idiom as
    /// `fleet_rng`/`round_client_rng`, under a salt no other subsystem
    /// uses. Disjoint from the training RNG by construction.
    fn stream(&self, dir: u64, seq: u64) -> SplitMix64 {
        let mut a = SplitMix64::new(self.config.seed ^ CHAOS_SALT);
        let mut b = SplitMix64::new(a.next_u64() ^ self.lane);
        let mut c = SplitMix64::new(b.next_u64() ^ dir);
        SplitMix64::new(c.next_u64() ^ seq)
    }

    /// Applies the injected-latency draw for one frame.
    fn inject_latency(&mut self, rng: &mut SplitMix64) {
        if self.config.latency_max == 0 {
            return;
        }
        let ticks = rng.next_range(self.config.latency_min, self.config.latency_max);
        self.stats.latency_ticks += ticks;
        let now = self.clock.now();
        self.clock.advance_to(now + ticks);
    }

    /// Re-encodes `frame`, flips one deterministically drawn bit, and
    /// runs the damage through the real decoder. Returns the decoder's
    /// typed error — or, defensively, the frame itself should the flip
    /// somehow survive validation (the CRCs cover every byte, so this
    /// arm is unreachable in practice).
    fn corrupt(&mut self, frame: &Frame, rng: &mut SplitMix64) -> Result<Frame, NetError> {
        self.stats.corruptions += 1;
        let mut bytes = frame.encode()?;
        let byte = rng.next_range(0, bytes.len() as u64 - 1) as usize;
        let bit = rng.next_range(0, 7) as u32;
        bytes[byte] ^= 1u8 << bit;
        Frame::decode(&bytes).map(|(f, _)| f)
    }

    /// The shared receive path: pull from the inner transport (with an
    /// optional deadline), apply the recv-side palette, and hand back
    /// the next deliverable frame.
    fn recv_impl(&mut self, timeout: Option<Duration>) -> Result<Frame, NetError> {
        loop {
            if let Some(frame) = self.ready.pop_front() {
                self.stats.frames_delivered += 1;
                return Ok(frame);
            }
            let pulled = match timeout {
                Some(t) => self.inner.recv_timeout(t),
                None => self.inner.recv(),
            };
            let frame = match pulled {
                Ok(frame) => frame,
                Err(NetError::Closed) => {
                    // End of stream: the reorder buffer drains in held
                    // order before the close is surfaced.
                    if let Some(held) = self.hold.pop_front() {
                        self.stats.frames_delivered += 1;
                        return Ok(held);
                    }
                    return Err(NetError::Closed);
                }
                Err(e) => return Err(e),
            };
            let seq = self.recv_seq;
            self.recv_seq += 1;
            let mut rng = self.stream(DIR_RECV, seq);
            // Decision order is fixed and documented: drop, corrupt,
            // reorder, duplicate, latency. Every draw happens on the
            // per-(direction, seq) stream, so inserting a fault never
            // perturbs a later frame's decisions.
            if rng.bernoulli(self.config.drop_p) {
                self.stats.drops += 1;
                continue;
            }
            if rng.bernoulli(self.config.corrupt_p) {
                match self.corrupt(&frame, &mut rng) {
                    Ok(survivor) => {
                        // Defensive only — CRCs make this unreachable.
                        self.ready.push_back(survivor);
                        continue;
                    }
                    Err(e) => return Err(e),
                }
            }
            if self.config.reorder_window > 0
                && self.hold.len() < self.config.reorder_window
                && rng.bernoulli(self.config.reorder_p)
            {
                self.stats.reorders += 1;
                self.hold.push_back(frame);
                continue;
            }
            if rng.bernoulli(self.config.dup_p) {
                self.stats.dups += 1;
                self.ready.push_back(frame.clone());
            }
            self.inject_latency(&mut rng);
            // Delivering a frame releases the oldest held frame behind
            // it — that is what makes a "park" an actual reorder.
            if let Some(held) = self.hold.pop_front() {
                self.ready.push_back(held);
            }
            self.stats.frames_delivered += 1;
            return Ok(frame);
        }
    }

    /// The shared send path: apply the send-side palette, then forward.
    fn send_impl(&mut self, frame: &Frame, timeout: Option<Duration>) -> Result<(), NetError> {
        let seq = self.send_seq;
        self.send_seq += 1;
        self.stats.frames_sent += 1;
        let mut rng = self.stream(DIR_SEND, seq);
        if rng.bernoulli(self.config.drop_p) {
            self.stats.drops += 1;
            return Ok(());
        }
        let copies = if rng.bernoulli(self.config.dup_p) {
            self.stats.dups += 1;
            2
        } else {
            1
        };
        self.inject_latency(&mut rng);
        for _ in 0..copies {
            match timeout {
                Some(t) => self.inner.send_timeout(frame, t)?,
                None => self.inner.send(frame)?,
            }
        }
        Ok(())
    }
}

impl<T: Transport> Transport for ChaosTransport<T> {
    fn send(&mut self, frame: &Frame) -> Result<(), NetError> {
        self.send_impl(frame, None)
    }

    fn recv(&mut self) -> Result<Frame, NetError> {
        self.recv_impl(None)
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Frame, NetError> {
        self.recv_impl(Some(timeout))
    }

    fn send_timeout(&mut self, frame: &Frame, timeout: Duration) -> Result<(), NetError> {
        self.send_impl(frame, Some(timeout))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::ChannelTransport;

    fn frame(seq: u64) -> Frame {
        Frame::new(3, 1, seq, format!("payload-{seq}").into_bytes())
    }

    /// Runs `n` frames through a chaos wrapper and returns the delivery
    /// trace: `Ok(seq)` for delivered frames, `Err(error)` for injected
    /// typed errors, ending when the stream closes.
    fn run_schedule(
        config: ChaosConfig,
        lane: u64,
        n: u64,
    ) -> (Vec<Result<u64, NetError>>, ChaosStats) {
        let (mut tx, rx) = ChannelTransport::pair();
        for seq in 0..n {
            tx.send(&frame(seq)).unwrap();
        }
        drop(tx);
        let mut chaos = ChaosTransport::new(rx, config, lane).unwrap();
        let mut trace = Vec::new();
        loop {
            match chaos.recv() {
                Ok(f) => trace.push(Ok(f.seq)),
                Err(NetError::Closed) => break,
                Err(e) => trace.push(Err(e)),
            }
        }
        (trace, chaos.stats().clone())
    }

    #[test]
    fn noop_config_is_transparent() {
        let config = ChaosConfig::default();
        assert!(config.is_noop());
        let (trace, stats) = run_schedule(config, 0, 10);
        let expected: Vec<Result<u64, NetError>> = (0..10).map(Ok).collect();
        assert_eq!(trace, expected);
        assert_eq!(
            stats.drops + stats.dups + stats.reorders + stats.corruptions,
            0
        );
        assert_eq!(stats.frames_delivered, 10);
    }

    #[test]
    fn same_seed_replays_bitwise() {
        let config = ChaosConfig {
            seed: 0xC4A05,
            drop_p: 0.2,
            dup_p: 0.15,
            reorder_p: 0.25,
            reorder_window: 3,
            corrupt_p: 0.1,
            latency_min: 1,
            latency_max: 9,
        };
        let (trace_a, stats_a) = run_schedule(config.clone(), 2, 200);
        let (trace_b, stats_b) = run_schedule(config.clone(), 2, 200);
        assert_eq!(trace_a, trace_b, "same seed, same lane → same schedule");
        assert_eq!(stats_a, stats_b);
        // A different lane draws a disjoint stream.
        let (trace_c, _) = run_schedule(config.clone(), 3, 200);
        assert_ne!(trace_a, trace_c, "lanes separate decision streams");
        // And a different seed reshuffles everything.
        let (trace_d, _) = run_schedule(
            ChaosConfig {
                seed: 0xC4A06,
                ..config
            },
            2,
            200,
        );
        assert_ne!(trace_a, trace_d);
    }

    #[test]
    fn every_fault_class_fires_and_is_typed() {
        let config = ChaosConfig {
            seed: 7,
            drop_p: 0.2,
            dup_p: 0.2,
            reorder_p: 0.3,
            reorder_window: 4,
            corrupt_p: 0.15,
            latency_min: 1,
            latency_max: 5,
        };
        let (trace, stats) = run_schedule(config, 0, 300);
        assert!(stats.drops > 0, "drops never fired");
        assert!(stats.dups > 0, "dups never fired");
        assert!(stats.reorders > 0, "reorders never fired");
        assert!(stats.corruptions > 0, "corruptions never fired");
        assert!(stats.latency_ticks > 0, "latency never fired");
        // Every corruption surfaced as a typed decode error — never a
        // panic, never a silently delivered damaged frame.
        let errors: Vec<&NetError> = trace.iter().filter_map(|r| r.as_ref().err()).collect();
        assert_eq!(errors.len() as u64, stats.corruptions);
        for e in &errors {
            assert!(
                matches!(
                    e,
                    NetError::HeaderCrc
                        | NetError::PayloadCrc
                        | NetError::BadMagic
                        | NetError::UnsupportedVersion { .. }
                        | NetError::Truncated { .. }
                        | NetError::Oversize { .. }
                ),
                "corruption produced a non-decode error: {e}"
            );
        }
        // Conservation: every sent frame is accounted for.
        let delivered = trace.iter().filter(|r| r.is_ok()).count() as u64;
        assert_eq!(delivered, stats.frames_delivered);
        assert_eq!(
            delivered,
            300 - stats.drops - stats.corruptions + stats.dups,
            "delivered = sent - dropped - corrupted + duplicated"
        );
    }

    #[test]
    fn reorder_actually_reorders_but_stays_bounded() {
        let config = ChaosConfig {
            seed: 11,
            reorder_p: 0.5,
            reorder_window: 2,
            ..ChaosConfig::default()
        };
        let (trace, stats) = run_schedule(config, 0, 100);
        assert!(stats.reorders > 0);
        let seqs: Vec<u64> = trace.into_iter().map(|r| r.unwrap()).collect();
        // All 100 frames arrive (reordering never loses frames) …
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u64>>());
        // … out of order …
        assert_ne!(seqs, sorted);
        // … and no frame is displaced further than the window allows
        // (window parks + releases bound the displacement).
        for (position, seq) in seqs.iter().enumerate() {
            let displacement = (position as i64 - *seq as i64).unsigned_abs();
            assert!(
                displacement <= 2 * 2 + 1,
                "frame {seq} displaced {displacement} positions"
            );
        }
    }

    #[test]
    fn send_side_faults_fire_too() {
        let (tx, mut rx) = ChannelTransport::pair();
        let config = ChaosConfig {
            seed: 5,
            drop_p: 0.3,
            dup_p: 0.3,
            ..ChaosConfig::default()
        };
        let mut chaos = ChaosTransport::new(tx, config, 0).unwrap();
        for seq in 0..100 {
            chaos.send(&frame(seq)).unwrap();
        }
        let stats = chaos.stats().clone();
        assert_eq!(stats.frames_sent, 100);
        assert!(stats.drops > 0);
        assert!(stats.dups > 0);
        drop(chaos);
        let mut arrived = 0u64;
        while let Ok(Some(_)) = rx.try_recv() {
            arrived += 1;
        }
        assert_eq!(arrived, 100 - stats.drops + stats.dups);
    }

    #[test]
    fn recv_timeout_passes_through_under_chaos() {
        let (mut tx, rx) = ChannelTransport::pair();
        let mut chaos = ChaosTransport::new(rx, ChaosConfig::default(), 0).unwrap();
        assert_eq!(
            chaos.recv_timeout(Duration::from_millis(10)).unwrap_err(),
            NetError::Timeout
        );
        tx.send(&frame(0)).unwrap();
        assert_eq!(
            chaos.recv_timeout(Duration::from_millis(10)).unwrap().seq,
            0
        );
    }

    #[test]
    fn malformed_configs_are_rejected() {
        let bad_p = ChaosConfig {
            drop_p: 1.5,
            ..ChaosConfig::default()
        };
        assert!(matches!(
            ChaosConfig::validate(&bad_p),
            Err(NetError::Protocol { .. })
        ));
        let bad_latency = ChaosConfig {
            latency_min: 10,
            latency_max: 5,
            ..ChaosConfig::default()
        };
        assert!(matches!(
            bad_latency.validate(),
            Err(NetError::Protocol { .. })
        ));
        let (tx, _rx) = ChannelTransport::pair();
        assert!(ChaosTransport::new(tx, bad_p, 0).is_err());
    }
}
