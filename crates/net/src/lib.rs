//! Wire layer for decentralized federated training.
//!
//! The paper's premise is *decentralized private data*; this crate is
//! the part that actually moves bytes between parties:
//!
//! - [`frame`] — a length-prefixed, CRC'd, versioned frame format with
//!   the same hostile-bytes hardening discipline as `rte_eda::shard`
//!   (magic, header CRC, documented caps, typed errors, no panics),
//! - [`transport`] — the [`Transport`] trait with an in-process channel
//!   backend and a Unix-domain-socket backend, plus the wall-clock
//!   [`FanIn`] used only by the non-deterministic async opt-out,
//! - [`clock`] — the seeded [`VirtualClock`] / [`EventQueue`] machinery
//!   behind determinism contract rule 8, and the sanctioned
//!   [`WallClock`] opt-out,
//! - [`chaos`] — the seeded fault-injection decorator behind
//!   determinism contract rule 9: [`ChaosTransport`] drops, duplicates,
//!   reorders, corrupts, and delays frames from per-`(direction, seq)`
//!   RNG streams, so a failure schedule replays bitwise,
//! - [`retry`] — [`RetryPolicy`], seeded-jitter exponential backoff for
//!   the callers who must survive that chaos,
//! - [`error`] — typed [`NetError`]s for every failure mode.
//!
//! The crate is deliberately dependency-free (it cannot even see
//! tensors); `rte_fed::wire` layers the federated message vocabulary on
//! top of these frames.

// Pure safe Rust; all workspace `unsafe` lives in `rte_tensor::simd`
// (rte-lint rule L1 enforces this).
#![forbid(unsafe_code)]
// This crate is a public API surface; restate the workspace doc lint.
#![warn(missing_docs)]

pub mod chaos;
pub mod clock;
pub mod error;
pub mod frame;
pub mod retry;
pub mod transport;

pub use chaos::{ChaosConfig, ChaosStats, ChaosTransport};
pub use clock::{EventQueue, SplitMix64, VirtualClock, WallClock};
pub use error::NetError;
pub use frame::{crc32, Frame, FRAME_MAGIC, FRAME_VERSION, MAX_FRAME_LEN, PRELUDE_LEN};
pub use retry::RetryPolicy;
pub use transport::{ChannelTransport, FanIn, Transport};
#[cfg(unix)]
pub use transport::{UdsListener, UdsTransport};
