//! Retry policy with seeded-jitter exponential backoff.
//!
//! Chaos (rule 9) makes failures replayable; this module makes the
//! *response* to failure replayable too. A [`RetryPolicy`] decides how
//! many attempts an operation gets and how long to wait between them —
//! and the jitter term is drawn from a [`SplitMix64`] stream derived
//! from `(jitter_seed, salt, attempt)`, never from the machine clock or
//! OS entropy, so two runs of the same schedule back off identically.
//!
//! The *sleeping* itself is wall-clock (there is nothing deterministic
//! about real elapsed time), but the *durations* are pure functions of
//! the seed: a simulation or test sets `base_ms = 0` and replays the
//! attempt schedule with zero real delay.

use std::time::Duration;

use crate::clock::SplitMix64;

/// Domain salt separating retry jitter from every other named RNG
/// stream in the workspace (training, chaos, scenario, clock).
const RETRY_SALT: u64 = 0x5254_4552_5452_5931; // "RTERTRY1"

/// How many attempts an operation gets and how long to wait between
/// them: exponential backoff (`base_ms << attempt`, capped at `max_ms`)
/// plus up to 50% seeded jitter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (so `1` means "no retries").
    pub max_attempts: u32,
    /// Backoff base in milliseconds; `0` disables waiting entirely
    /// (attempts still count — this is the simulation/test mode).
    pub base_ms: u64,
    /// Upper bound on any single delay, jitter included.
    pub max_ms: u64,
    /// Seed for the jitter stream. Same seed, same salts → the same
    /// delay schedule, bit for bit.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_ms: 50,
            max_ms: 2_000,
            jitter_seed: 0,
        }
    }
}

impl RetryPolicy {
    /// A policy that makes `max_attempts` attempts with zero delay —
    /// for tests, benches, and in-process transports where waiting
    /// buys nothing.
    pub fn immediate(max_attempts: u32) -> Self {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            base_ms: 0,
            max_ms: 0,
            jitter_seed: 0,
        }
    }

    /// The delay before retry number `attempt` (0-based: the delay
    /// *after* the first failure is `delay_ms(0, salt)`). `salt`
    /// separates concurrent users of one policy (client index, by
    /// convention) so their jitter streams are disjoint.
    pub fn delay_ms(&self, attempt: u32, salt: u64) -> u64 {
        if self.base_ms == 0 {
            return 0;
        }
        let shift = attempt.min(20);
        let exp = self.base_ms.saturating_mul(1u64 << shift).min(self.max_ms);
        // Jitter in [0, exp/2], from a stream chained over
        // (jitter_seed, salt, attempt) — one derivation point, same
        // idiom as the chaos palette.
        let mut a = SplitMix64::new(self.jitter_seed ^ RETRY_SALT);
        let mut b = SplitMix64::new(a.next_u64() ^ salt);
        let mut stream = SplitMix64::new(b.next_u64() ^ u64::from(attempt));
        let jitter = stream.next_range(0, exp / 2);
        exp.saturating_add(jitter)
            .min(self.max_ms.max(self.base_ms))
    }

    /// Sleeps for `delay_ms(attempt, salt)` — a no-op when the policy
    /// is delay-free.
    pub fn sleep(&self, attempt: u32, salt: u64) {
        let ms = self.delay_ms(attempt, salt);
        if ms > 0 {
            std::thread::sleep(Duration::from_millis(ms));
        }
    }

    /// Runs `op` up to `max_attempts` times, sleeping the backoff
    /// schedule between failures, and returns the first success or the
    /// last error. `retryable` decides which errors are worth another
    /// attempt (a `Closed` socket is; a protocol violation is not).
    ///
    /// # Errors
    ///
    /// The final attempt's error, when every attempt fails or the first
    /// non-retryable error is met.
    pub fn run<T, E>(
        &self,
        salt: u64,
        mut retryable: impl FnMut(&E) -> bool,
        mut op: impl FnMut(u32) -> Result<T, E>,
    ) -> Result<T, E> {
        let attempts = self.max_attempts.max(1);
        let mut attempt = 0;
        loop {
            match op(attempt) {
                Ok(value) => return Ok(value),
                Err(e) => {
                    if attempt + 1 >= attempts || !retryable(&e) {
                        return Err(e);
                    }
                    self.sleep(attempt, salt);
                    attempt += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_are_deterministic_and_capped() {
        let policy = RetryPolicy {
            max_attempts: 5,
            base_ms: 10,
            max_ms: 100,
            jitter_seed: 42,
        };
        for attempt in 0..8 {
            for salt in 0..4 {
                let a = policy.delay_ms(attempt, salt);
                let b = policy.delay_ms(attempt, salt);
                assert_eq!(a, b, "same (attempt, salt) → same delay");
                assert!(a <= 100, "delay {a} exceeds cap");
            }
        }
        // Different salts should (for this seed) diverge somewhere.
        let trace_a: Vec<u64> = (0..5).map(|i| policy.delay_ms(i, 0)).collect();
        let trace_b: Vec<u64> = (0..5).map(|i| policy.delay_ms(i, 1)).collect();
        assert_ne!(trace_a, trace_b, "jitter streams are per-salt");
    }

    #[test]
    fn delays_grow_before_the_cap() {
        let policy = RetryPolicy {
            max_attempts: 5,
            base_ms: 10,
            max_ms: 1_000_000,
            jitter_seed: 0,
        };
        // The deterministic exponential part dominates: each delay is at
        // least the raw exponential term.
        for attempt in 0..6 {
            assert!(policy.delay_ms(attempt, 0) >= 10 << attempt);
        }
    }

    #[test]
    fn immediate_policy_never_waits() {
        let policy = RetryPolicy::immediate(4);
        assert_eq!(policy.max_attempts, 4);
        for attempt in 0..10 {
            assert_eq!(policy.delay_ms(attempt, 99), 0);
        }
        // max_attempts is clamped to at least one attempt.
        assert_eq!(RetryPolicy::immediate(0).max_attempts, 1);
    }

    #[test]
    fn run_retries_then_succeeds() {
        let policy = RetryPolicy::immediate(3);
        let mut calls = 0;
        let result: Result<u32, &str> = policy.run(
            0,
            |_| true,
            |attempt| {
                calls += 1;
                if attempt < 2 {
                    Err("flaky")
                } else {
                    Ok(attempt)
                }
            },
        );
        assert_eq!(result, Ok(2));
        assert_eq!(calls, 3);
    }

    #[test]
    fn run_stops_on_non_retryable_and_on_exhaustion() {
        let policy = RetryPolicy::immediate(3);
        let mut calls = 0;
        let result: Result<(), &str> = policy.run(
            0,
            |e| *e != "fatal",
            |_| {
                calls += 1;
                Err("fatal")
            },
        );
        assert_eq!(result, Err("fatal"));
        assert_eq!(calls, 1, "non-retryable errors are not retried");

        let mut calls = 0;
        let result: Result<(), &str> = policy.run(
            0,
            |_| true,
            |_| {
                calls += 1;
                Err("flaky")
            },
        );
        assert_eq!(result, Err("flaky"));
        assert_eq!(calls, 3, "exhaustion returns the last error");
    }
}
