//! Typed errors for the wire layer.
//!
//! Every hostile-bytes condition the frame decoder can meet maps to one
//! of these variants — the decoder never panics, hangs, or silently
//! accepts a damaged frame (`tests/frame_hostile.rs` drives this with
//! random corruption).

use std::error::Error;
use std::fmt;

/// Error produced by frame encoding/decoding or a transport.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// The first eight bytes are not the frame magic — this is not a
    /// frame stream (or the stream lost sync).
    BadMagic,
    /// The frame speaks a format version this build does not.
    UnsupportedVersion {
        /// The version the frame claimed.
        got: u32,
    },
    /// The header checksum does not match the header bytes: the prelude
    /// was damaged in flight, so none of its fields can be trusted.
    HeaderCrc,
    /// The payload checksum does not match the payload bytes.
    PayloadCrc,
    /// The input ended before the structure it promised was complete.
    Truncated {
        /// Which part of the frame was cut short.
        context: &'static str,
    },
    /// A declared length exceeds the documented cap — rejected before
    /// any allocation is attempted.
    Oversize {
        /// The declared length.
        len: u64,
        /// The documented maximum.
        max: u64,
    },
    /// An underlying I/O operation failed (socket error, reset peer).
    Io {
        /// The OS-level message.
        reason: String,
    },
    /// The peer hung up: the channel or socket is closed.
    Closed,
    /// A deadline elapsed before the operation completed. The peer may
    /// still be alive — callers decide whether to retry, re-send, or
    /// give the slot up (quorum degradation).
    Timeout,
    /// The bytes were structurally valid but violated the conversation's
    /// protocol (unexpected kind, wrong round, duplicate hello).
    Protocol {
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::BadMagic => write!(f, "bad frame magic"),
            NetError::UnsupportedVersion { got } => {
                write!(f, "unsupported frame version {got}")
            }
            NetError::HeaderCrc => write!(f, "frame header checksum mismatch"),
            NetError::PayloadCrc => write!(f, "frame payload checksum mismatch"),
            NetError::Truncated { context } => write!(f, "truncated frame: {context}"),
            NetError::Oversize { len, max } => {
                write!(f, "declared length {len} exceeds the {max}-byte cap")
            }
            NetError::Io { reason } => write!(f, "transport I/O error: {reason}"),
            NetError::Closed => write!(f, "transport closed by peer"),
            NetError::Timeout => write!(f, "deadline elapsed before the operation completed"),
            NetError::Protocol { reason } => write!(f, "protocol violation: {reason}"),
        }
    }
}

impl Error for NetError {}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        match e.kind() {
            std::io::ErrorKind::UnexpectedEof => NetError::Truncated {
                context: "stream ended mid-frame",
            },
            // A socket read/write deadline elapsing surfaces as either
            // kind depending on the platform; both mean "deadline", not
            // "peer gone".
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => NetError::Timeout,
            _ => NetError::Io {
                reason: e.to_string(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_every_variant() {
        let cases: Vec<(NetError, &str)> = vec![
            (NetError::BadMagic, "magic"),
            (NetError::UnsupportedVersion { got: 9 }, "version 9"),
            (NetError::HeaderCrc, "header"),
            (NetError::PayloadCrc, "payload"),
            (NetError::Truncated { context: "prelude" }, "prelude"),
            (NetError::Oversize { len: 10, max: 5 }, "cap"),
            (NetError::Io { reason: "x".into() }, "I/O"),
            (NetError::Closed, "closed"),
            (NetError::Timeout, "deadline"),
            (NetError::Protocol { reason: "y".into() }, "protocol"),
        ];
        for (e, needle) in cases {
            assert!(e.to_string().contains(needle), "{e}");
        }
    }

    #[test]
    fn eof_maps_to_truncated() {
        let eof = std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "eof");
        assert!(matches!(NetError::from(eof), NetError::Truncated { .. }));
        let other = std::io::Error::new(std::io::ErrorKind::BrokenPipe, "pipe");
        assert!(matches!(NetError::from(other), NetError::Io { .. }));
    }

    #[test]
    fn socket_deadline_kinds_map_to_timeout() {
        for kind in [std::io::ErrorKind::WouldBlock, std::io::ErrorKind::TimedOut] {
            let e = std::io::Error::new(kind, "deadline");
            assert_eq!(NetError::from(e), NetError::Timeout);
        }
    }
}
