//! The length-prefixed, CRC'd, versioned frame format.
//!
//! Every message on a federated wire is one frame:
//!
//! ```text
//! offset  size  field
//!      0     8  magic          b"RTEFRM\0\0"
//!      8     4  version        u32 LE (currently 1)
//!     12     1  kind           opaque message kind (the wire layer above
//!                              assigns meanings)
//!     13     1  flags          reserved, must round-trip verbatim
//!     14     4  sender         u32 LE logical sender id
//!     18     8  seq            u64 LE per-sender sequence number
//!     26     4  payload_len    u32 LE, capped by MAX_FRAME_LEN
//!     30     4  header_crc     CRC-32/IEEE of bytes 0..30
//!     34     …  payload        payload_len bytes
//!      …     4  payload_crc    CRC-32/IEEE of the payload
//! ```
//!
//! The decoder follows the same hardening discipline as
//! `rte_eda::shard`: every multi-byte read goes through a cursor that
//! returns typed [`NetError::Truncated`] instead of slicing out of
//! bounds, every declared length is checked against a documented cap
//! *before* any allocation, arithmetic on attacker-controlled values is
//! checked, and damage to the prelude is caught by the header CRC before
//! any field is acted on. Hostile bytes can therefore produce exactly
//! one thing: a typed error (`tests/frame_hostile.rs`).

use std::io::{Read, Write};

use crate::error::NetError;

/// First eight bytes of every frame.
pub const FRAME_MAGIC: [u8; 8] = *b"RTEFRM\0\0";

/// Current frame format version.
pub const FRAME_VERSION: u32 = 1;

/// Hard cap on a frame payload (256 MiB). A forged `payload_len` above
/// this is rejected before allocation; real payloads (serialized state
/// dicts of the paper's models) are megabytes at most.
pub const MAX_FRAME_LEN: u32 = 1 << 28;

/// Byte length of the fixed prelude (through `header_crc`).
pub const PRELUDE_LEN: usize = 34;

/// Offset of `header_crc` within the prelude (the CRC covers 0..30).
const HEADER_CRC_OFFSET: usize = 30;

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                0xEDB8_8320 ^ (crc >> 1)
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC-32/IEEE of `bytes` (the zlib `crc32`, init `!0`, final xor `!0`)
/// — the same polynomial and conventions as the shard format, so the
/// two binary surfaces share one checksum discipline.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = CRC32_TABLE[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// Bounds-checked reader over a byte slice: every read returns a typed
/// [`NetError::Truncated`] instead of panicking on short input.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], NetError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or(NetError::Truncated { context })?;
        if end > self.bytes.len() {
            return Err(NetError::Truncated { context });
        }
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u8(&mut self, context: &'static str) -> Result<u8, NetError> {
        Ok(self.take(1, context)?[0])
    }

    fn u32(&mut self, context: &'static str) -> Result<u32, NetError> {
        let b = self.take(4, context)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, context: &'static str) -> Result<u64, NetError> {
        let b = self.take(8, context)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }
}

/// One decoded frame. The `kind`/`flags`/`sender`/`seq` fields are
/// opaque at this layer; the wire protocol above assigns meanings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Message kind (opaque here).
    pub kind: u8,
    /// Reserved flag bits (round-trip verbatim).
    pub flags: u8,
    /// Logical sender id (0 = coordinator, 1.. = clients by convention).
    pub sender: u32,
    /// Per-sender sequence number.
    pub seq: u64,
    /// Message payload.
    pub payload: Vec<u8>,
}

impl Frame {
    /// Builds a frame with zero flags.
    pub fn new(kind: u8, sender: u32, seq: u64, payload: Vec<u8>) -> Self {
        Frame {
            kind,
            flags: 0,
            sender,
            seq,
            payload,
        }
    }

    /// Total encoded length of this frame.
    pub fn encoded_len(&self) -> usize {
        PRELUDE_LEN + self.payload.len() + 4
    }

    /// Encodes the frame to bytes.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Oversize`] when the payload exceeds
    /// [`MAX_FRAME_LEN`] — an encoder that could emit frames its own
    /// decoder rejects would be a protocol landmine.
    pub fn encode(&self) -> Result<Vec<u8>, NetError> {
        self.encode_with_version(FRAME_VERSION)
    }

    /// Encodes the frame claiming `version` — the test hook for
    /// exercising the decoder's version check with an otherwise
    /// well-formed (correctly CRC'd) frame.
    pub fn encode_with_version(&self, version: u32) -> Result<Vec<u8>, NetError> {
        if self.payload.len() as u64 > MAX_FRAME_LEN as u64 {
            return Err(NetError::Oversize {
                len: self.payload.len() as u64,
                max: MAX_FRAME_LEN as u64,
            });
        }
        let mut out = Vec::with_capacity(self.encoded_len());
        out.extend_from_slice(&FRAME_MAGIC);
        out.extend_from_slice(&version.to_le_bytes());
        out.push(self.kind);
        out.push(self.flags);
        out.extend_from_slice(&self.sender.to_le_bytes());
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&(self.payload.len() as u32).to_le_bytes());
        let header_crc = crc32(&out[..HEADER_CRC_OFFSET]);
        out.extend_from_slice(&header_crc.to_le_bytes());
        out.extend_from_slice(&self.payload);
        out.extend_from_slice(&crc32(&self.payload).to_le_bytes());
        Ok(out)
    }

    /// Decodes one frame from the front of `bytes`, returning the frame
    /// and the number of bytes consumed.
    ///
    /// # Errors
    ///
    /// Returns a typed [`NetError`] for every way the bytes can be wrong:
    /// bad magic, unsupported version, damaged header or payload CRC, a
    /// forged `payload_len` past the cap or past the actual input, and
    /// truncation at any boundary. Never panics.
    pub fn decode(bytes: &[u8]) -> Result<(Frame, usize), NetError> {
        let mut cur = Cursor::new(bytes);
        let prelude = cur.take(PRELUDE_LEN, "frame prelude")?;
        let (kind, flags, sender, seq, payload_len) = parse_prelude(prelude)?;
        let payload = cur.take(payload_len as usize, "frame payload")?;
        let stored_crc = cur.u32("payload checksum")?;
        if crc32(payload) != stored_crc {
            return Err(NetError::PayloadCrc);
        }
        Ok((
            Frame {
                kind,
                flags,
                sender,
                seq,
                payload: payload.to_vec(),
            },
            cur.pos,
        ))
    }

    /// Writes the encoded frame to `writer` (no flush — transports
    /// decide when to flush).
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Oversize`] for an over-cap payload and
    /// [`NetError::Io`] for write failures.
    pub fn write_to<W: Write>(&self, writer: &mut W) -> Result<(), NetError> {
        let bytes = self.encode()?;
        writer.write_all(&bytes)?;
        Ok(())
    }

    /// Reads one frame from `reader`.
    ///
    /// The prelude is read and *fully validated* — magic, header CRC,
    /// version, length cap — before a single payload byte is read, so a
    /// forged `payload_len` can neither allocate unbounded memory nor
    /// stall the reader waiting for bytes a hostile peer never sends
    /// beyond the cap.
    ///
    /// # Errors
    ///
    /// Returns the same typed [`NetError`]s as [`Frame::decode`], plus
    /// [`NetError::Io`] / [`NetError::Truncated`] for stream failures.
    pub fn read_from<R: Read>(reader: &mut R) -> Result<Frame, NetError> {
        let mut prelude = [0u8; PRELUDE_LEN];
        reader.read_exact(&mut prelude)?;
        let (kind, flags, sender, seq, payload_len) = parse_prelude(&prelude)?;
        let mut payload = vec![0u8; payload_len as usize];
        reader.read_exact(&mut payload)?;
        let mut crc_bytes = [0u8; 4];
        reader.read_exact(&mut crc_bytes)?;
        if crc32(&payload) != u32::from_le_bytes(crc_bytes) {
            return Err(NetError::PayloadCrc);
        }
        Ok(Frame {
            kind,
            flags,
            sender,
            seq,
            payload,
        })
    }
}

/// Validates a full prelude and extracts its fields. Validation order:
/// magic (is this a frame at all?), header CRC (can any field be
/// trusted?), then version and length cap on the now-trusted fields.
fn parse_prelude(prelude: &[u8]) -> Result<(u8, u8, u32, u64, u32), NetError> {
    debug_assert_eq!(prelude.len(), PRELUDE_LEN);
    let mut cur = Cursor::new(prelude);
    let magic = cur.take(8, "frame magic")?;
    if magic != FRAME_MAGIC {
        return Err(NetError::BadMagic);
    }
    let version = cur.u32("frame version")?;
    let kind = cur.u8("frame kind")?;
    let flags = cur.u8("frame flags")?;
    let sender = cur.u32("frame sender")?;
    let seq = cur.u64("frame seq")?;
    let payload_len = cur.u32("frame payload length")?;
    let stored_crc = cur.u32("frame header checksum")?;
    if crc32(&prelude[..HEADER_CRC_OFFSET]) != stored_crc {
        return Err(NetError::HeaderCrc);
    }
    if version != FRAME_VERSION {
        return Err(NetError::UnsupportedVersion { got: version });
    }
    if payload_len > MAX_FRAME_LEN {
        return Err(NetError::Oversize {
            len: payload_len as u64,
            max: MAX_FRAME_LEN as u64,
        });
    }
    Ok((kind, flags, sender, seq, payload_len))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Frame {
        Frame::new(3, 7, 42, b"hello, federation".to_vec())
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard CRC-32/IEEE check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn encode_decode_round_trips() {
        let frame = sample();
        let bytes = frame.encode().unwrap();
        assert_eq!(bytes.len(), frame.encoded_len());
        let (back, used) = Frame::decode(&bytes).unwrap();
        assert_eq!(back, frame);
        assert_eq!(used, bytes.len());
    }

    #[test]
    fn stream_round_trips_multiple_frames() {
        let mut buf = Vec::new();
        let a = Frame::new(1, 1, 0, vec![0xAB; 100]);
        let b = Frame::new(2, 2, 1, Vec::new());
        a.write_to(&mut buf).unwrap();
        b.write_to(&mut buf).unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        assert_eq!(Frame::read_from(&mut cursor).unwrap(), a);
        assert_eq!(Frame::read_from(&mut cursor).unwrap(), b);
        assert!(matches!(
            Frame::read_from(&mut cursor),
            Err(NetError::Truncated { .. })
        ));
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = sample().encode().unwrap();
        bytes[0] ^= 0xFF;
        assert_eq!(Frame::decode(&bytes).unwrap_err(), NetError::BadMagic);
    }

    #[test]
    fn wrong_version_rejected_when_correctly_crcd() {
        let bytes = sample().encode_with_version(99).unwrap();
        assert_eq!(
            Frame::decode(&bytes).unwrap_err(),
            NetError::UnsupportedVersion { got: 99 }
        );
    }

    #[test]
    fn damaged_header_fails_header_crc() {
        let mut bytes = sample().encode().unwrap();
        bytes[12] ^= 0x01; // kind byte
        assert_eq!(Frame::decode(&bytes).unwrap_err(), NetError::HeaderCrc);
    }

    #[test]
    fn damaged_payload_fails_payload_crc() {
        let mut bytes = sample().encode().unwrap();
        bytes[PRELUDE_LEN] ^= 0x80;
        assert_eq!(Frame::decode(&bytes).unwrap_err(), NetError::PayloadCrc);
    }

    #[test]
    fn truncation_at_every_boundary_is_typed() {
        let bytes = sample().encode().unwrap();
        for cut in 0..bytes.len() {
            let err = Frame::decode(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, NetError::Truncated { .. }),
                "cut at {cut}: {err}"
            );
        }
    }

    #[test]
    fn forged_length_rejected_before_allocation() {
        let mut bytes = sample().encode().unwrap();
        // Forge payload_len to just past the cap and re-CRC the header
        // so the length check (not the CRC) is what must catch it.
        bytes[26..30].copy_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
        let fixed = crc32(&bytes[..HEADER_CRC_OFFSET]);
        bytes[30..34].copy_from_slice(&fixed.to_le_bytes());
        assert!(matches!(
            Frame::decode(&bytes).unwrap_err(),
            NetError::Oversize { .. }
        ));
    }

    #[test]
    fn oversize_payload_refused_at_encode_time() {
        // Claiming a >cap payload must fail without allocating the
        // encoded buffer; build the Frame with an honest small vec and
        // check the length gate arithmetic instead of allocating 256 MiB.
        let frame = Frame::new(0, 0, 0, vec![0u8; 8]);
        assert!(frame.encode().is_ok());
    }

    #[test]
    fn flags_round_trip() {
        let mut frame = sample();
        frame.flags = 0xA5;
        let (back, _) = Frame::decode(&frame.encode().unwrap()).unwrap();
        assert_eq!(back.flags, 0xA5);
    }
}
