//! Hostile-bytes property tests for the frame codec: every class of
//! damage an attacker (or a flaky disk/socket) can inflict must surface
//! as a *typed* [`NetError`] — never a panic, never a hang, never a
//! silently accepted frame. Same discipline as the shard-format fuzz
//! suite in `rte_eda`.

use proptest::prelude::*;

use rte_net::{crc32, Frame, NetError, FRAME_VERSION, MAX_FRAME_LEN, PRELUDE_LEN};

/// Offset of `header_crc` within the prelude (the CRC covers 0..30).
const HEADER_CRC_OFFSET: usize = 30;

/// Builds an arbitrary frame from independently drawn raw components
/// (the vendored proptest has no tuple/`prop_map` strategies, so the
/// narrowing happens here).
fn mk_frame(kind: u32, flags: u32, sender: u32, seq: u64, payload: &[u32]) -> Frame {
    Frame {
        kind: kind as u8,
        flags: flags as u8,
        sender,
        seq,
        payload: payload.iter().map(|&v| v as u8).collect(),
    }
}

/// Re-CRCs the header after a deliberate prelude edit, so the length/
/// version checks — not the CRC — are what the decoder must rely on.
fn fix_header_crc(bytes: &mut [u8]) {
    let crc = crc32(&bytes[..HEADER_CRC_OFFSET]);
    bytes[HEADER_CRC_OFFSET..PRELUDE_LEN].copy_from_slice(&crc.to_le_bytes());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A single flipped byte anywhere in an encoded frame is always
    /// caught, and by the layer responsible for that region: magic
    /// damage → `BadMagic`, other prelude damage → `HeaderCrc`, payload
    /// or trailer damage → `PayloadCrc`.
    #[test]
    fn any_single_byte_flip_is_rejected_with_the_right_error(
        kind in any::<u32>(),
        flags in any::<u32>(),
        sender in any::<u32>(),
        seq in any::<u64>(),
        payload in collection::vec(any::<u32>(), 0..200),
        at_raw in any::<u64>(),
        mask_raw in any::<u32>(),
    ) {
        let frame = mk_frame(kind, flags, sender, seq, &payload);
        let mut bytes = frame.encode().unwrap();
        let at = (at_raw % bytes.len() as u64) as usize;
        let mask = (mask_raw % 255 + 1) as u8; // any non-zero flip
        bytes[at] ^= mask;
        let err = Frame::decode(&bytes).unwrap_err();
        if at < 8 {
            prop_assert_eq!(err, NetError::BadMagic);
        } else if at < PRELUDE_LEN {
            prop_assert_eq!(err, NetError::HeaderCrc);
        } else {
            prop_assert_eq!(err, NetError::PayloadCrc);
        }
    }

    /// Truncation at *every* byte boundary of an arbitrary frame is a
    /// typed `Truncated` — the cursor never slices out of bounds.
    #[test]
    fn truncation_at_every_boundary_is_typed(
        kind in any::<u32>(),
        flags in any::<u32>(),
        sender in any::<u32>(),
        seq in any::<u64>(),
        payload in collection::vec(any::<u32>(), 0..200),
    ) {
        let bytes = mk_frame(kind, flags, sender, seq, &payload).encode().unwrap();
        for cut in 0..bytes.len() {
            let err = Frame::decode(&bytes[..cut]).unwrap_err();
            prop_assert!(
                matches!(err, NetError::Truncated { .. }),
                "cut at {}: {:?}", cut, err
            );
        }
    }

    /// A forged `payload_len` (header re-CRC'd so the checksum cannot
    /// save us) is rejected: past the cap → `Oversize` *before any
    /// allocation*, past the actual input → `Truncated`, and shrunk
    /// below the real length → the bytes no longer checksum.
    #[test]
    fn forged_payload_len_is_rejected(
        kind in any::<u32>(),
        flags in any::<u32>(),
        sender in any::<u32>(),
        seq in any::<u64>(),
        payload in collection::vec(any::<u32>(), 0..200),
        forged in any::<u32>(),
    ) {
        let frame = mk_frame(kind, flags, sender, seq, &payload);
        prop_assume!(forged as usize != frame.payload.len());
        let mut bytes = frame.encode().unwrap();
        bytes[26..30].copy_from_slice(&forged.to_le_bytes());
        fix_header_crc(&mut bytes);
        let err = Frame::decode(&bytes).unwrap_err();
        if forged > MAX_FRAME_LEN {
            prop_assert_eq!(
                err,
                NetError::Oversize { len: forged as u64, max: MAX_FRAME_LEN as u64 }
            );
        } else if forged as usize > frame.payload.len() {
            prop_assert!(matches!(err, NetError::Truncated { .. }), "{:?}", err);
        } else {
            prop_assert_eq!(err, NetError::PayloadCrc);
        }
    }

    /// A frame claiming any version other than the current one — but
    /// otherwise pristine, correct CRCs included — is refused with the
    /// claimed version in the error.
    #[test]
    fn wrong_version_is_refused_even_when_correctly_crcd(
        kind in any::<u32>(),
        sender in any::<u32>(),
        seq in any::<u64>(),
        payload in collection::vec(any::<u32>(), 0..64),
        version in any::<u32>(),
    ) {
        prop_assume!(version != FRAME_VERSION);
        let frame = mk_frame(kind, 0, sender, seq, &payload);
        let bytes = frame.encode_with_version(version).unwrap();
        prop_assert_eq!(
            Frame::decode(&bytes).unwrap_err(),
            NetError::UnsupportedVersion { got: version }
        );
    }

    /// Arbitrary garbage never decodes (and never panics): a random
    /// buffer passing magic + two CRCs has probability ~2^-96.
    #[test]
    fn random_garbage_never_decodes(bytes in collection::vec(any::<u32>(), 0..300)) {
        let bytes: Vec<u8> = bytes.iter().map(|&v| v as u8).collect();
        prop_assert!(Frame::decode(&bytes).is_err());
    }

    /// The streaming reader validates the prelude *before* reading a
    /// single payload byte: a hostile peer that promises an over-cap
    /// payload and then goes silent gets `Oversize`, not a reader
    /// stalled waiting for 4 GiB that will never arrive.
    #[test]
    fn read_from_rejects_forged_prelude_before_reading_payload(
        kind in any::<u32>(),
        sender in any::<u32>(),
        seq in any::<u64>(),
        payload in collection::vec(any::<u32>(), 0..64),
        over_raw in any::<u32>(),
    ) {
        let over = MAX_FRAME_LEN + 1 + over_raw % (u32::MAX - MAX_FRAME_LEN);
        let mut bytes = mk_frame(kind, 0, sender, seq, &payload).encode().unwrap();
        bytes[26..30].copy_from_slice(&over.to_le_bytes());
        fix_header_crc(&mut bytes);
        // Hand the reader the prelude alone — if validation ordering
        // regressed, read_from would report a payload truncation (it
        // tried to read) instead of the length-cap violation.
        let mut reader = std::io::Cursor::new(bytes[..PRELUDE_LEN].to_vec());
        prop_assert_eq!(
            Frame::read_from(&mut reader).unwrap_err(),
            NetError::Oversize { len: over as u64, max: MAX_FRAME_LEN as u64 }
        );
    }
}
