//! Beyond DRC hotspots: the paper's conclusion argues the collaborative
//! training flow extends to other layout-level predictions. This example
//! demonstrates that generality by switching the task to *congestion
//! regression* — predicting the continuous routing-demand map instead of
//! binary hotspots — while reusing the identical federated machinery
//! (only the label tensors change).
//!
//! ```text
//! cargo run --release --example congestion_regression
//! ```

use decentralized_routability::eda::congestion::route_demand;
use decentralized_routability::eda::corpus::{CorpusConfig, PAPER_CLIENTS};
use decentralized_routability::eda::features::{extract_features, FEATURE_CHANNELS};
use decentralized_routability::eda::netlist::generate_netlist;
use decentralized_routability::eda::placement::{place, PlacementConfig};
use decentralized_routability::fed::methods::fedprox_rounds;
use decentralized_routability::fed::{Client, ClientSet, FedConfig, ModelFactory};
use decentralized_routability::nn::load_state_dict;
use decentralized_routability::nn::models::{FlNet, FlNetConfig};
use decentralized_routability::tensor::rng::Xoshiro256;
use decentralized_routability::tensor::Tensor;

/// Builds one client whose labels are normalized congestion maps.
fn regression_client(
    spec_index: usize,
    n_designs: usize,
    placements_per_design: usize,
    test_designs: usize,
) -> Result<Client, Box<dyn std::error::Error>> {
    const TASK_SALT: u64 = 0xC0DE_57A7;
    let spec = PAPER_CLIENTS[spec_index - 1];
    let corpus_seed = CorpusConfig::scaled().seed ^ TASK_SALT;
    let root = Xoshiro256::seed_from(corpus_seed).derive(spec_index as u64);
    let build_split =
        |role: u64, designs: usize| -> Result<ClientSet, Box<dyn std::error::Error>> {
            let mut xs = Vec::new();
            let mut ys = Vec::new();
            let mut n = 0usize;
            let role_stream = root.derive(role);
            for d in 0..designs {
                let mut ds = role_stream.derive(d as u64);
                let netlist = generate_netlist(spec.family, ds.next_u64())?;
                for p in 0..placements_per_design {
                    let mut ps = ds.derive(p as u64 + 1);
                    let config = PlacementConfig::new(16, 16, ps.next_u64());
                    let placement = place(&netlist, &config)?;
                    let features = extract_features(&netlist, &placement)?;
                    // Continuous label: combined demand squashed to [0, 1).
                    let demand = route_demand(&netlist, &placement);
                    let combined = demand.combined();
                    let mean = combined.iter().sum::<f64>() / combined.len() as f64;
                    let label: Vec<f32> = combined
                        .iter()
                        .map(|&v| (v / (v + 2.0 * mean.max(1e-9))) as f32)
                        .collect();
                    xs.extend_from_slice(features.data());
                    ys.extend_from_slice(&label);
                    n += 1;
                }
            }
            Ok(ClientSet::new(
                Tensor::from_vec(xs, &[n, FEATURE_CHANNELS, 16, 16])?,
                Tensor::from_vec(ys, &[n, 1, 16, 16])?,
            )?)
        };
    let train = build_split(0, n_designs)?;
    let test = build_split(1, test_designs)?;
    Ok(Client::new(spec_index, train, test))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Three clients from three different families.
    println!("building congestion-regression clients (families: ITC'99, ISCAS'89, ISPD'15) …");
    let clients = vec![
        regression_client(1, 2, 4, 1)?,
        regression_client(4, 3, 3, 1)?,
        regression_client(9, 3, 3, 2)?,
    ];

    let factory: ModelFactory = Box::new(|seed| {
        let mut rng = Xoshiro256::seed_from(seed);
        Box::new(FlNet::new(
            FlNetConfig {
                in_channels: FEATURE_CHANNELS,
                hidden: 16,
                kernel: 9,
                depth: 2,
            },
            &mut rng,
        ))
    });

    let mut fed = FedConfig::scaled();
    fed.rounds = 4;
    fed.local_steps = 10;
    println!(
        "running FedProx for {} rounds on the regression task …",
        fed.rounds
    );
    let (global, _) = fedprox_rounds(&clients, &factory, &fed)?;

    // Evaluate RMSE per client (regression metric, not AUC).
    let mut model = factory(fed.seed);
    load_state_dict(model.as_mut(), &global)?;
    println!("\nper-client congestion-map RMSE (lower is better):");
    for client in &clients {
        let n = client.test.len();
        let indices: Vec<usize> = (0..n).collect();
        let (x, y) = client.test.minibatch(&indices);
        let pred = model.forward(&x, false)?;
        let mse: f64 = pred
            .data()
            .iter()
            .zip(y.data().iter())
            .map(|(&a, &b)| ((a - b) as f64).powi(2))
            .sum::<f64>()
            / pred.numel() as f64;
        println!("  client {}: RMSE {:.4}", client.id, mse.sqrt());
    }
    println!(
        "\nSame federated stack, different task — the only change was the label\n\
         tensor, demonstrating the paper's claim of generality to other\n\
         layout-level predictions."
    );
    Ok(())
}
