//! Quickstart: generate synthetic routability data for one client, train
//! the paper's FLNet on it, and measure ROC AUC on unseen designs.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use decentralized_routability::eda::corpus::{generate_client, CorpusConfig, PAPER_CLIENTS};
use decentralized_routability::fed::{evaluate_auc, ClientSet, LocalTrainer};
use decentralized_routability::nn::models::{FlNet, FlNetConfig};
use decentralized_routability::nn::Layer;
use decentralized_routability::tensor::rng::Xoshiro256;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Data: client 1 of the paper's Table 2 (ITC'99 designs), at a
    //    small placement count so this example finishes in seconds.
    let mut config = CorpusConfig::scaled();
    config.placement_scale = 0.05;
    let client = generate_client(&PAPER_CLIENTS[0], &config)?;
    println!(
        "client 1: {} training placements, {} testing placements, {:.1}% hotspot tiles",
        client.train.len(),
        client.test.len(),
        100.0 * client.train.hotspot_rate()
    );

    // 2. Model: FLNet (Table 1) at reduced width for CPU speed.
    let mut rng = Xoshiro256::seed_from(42);
    let mut model = FlNet::new(
        FlNetConfig {
            hidden: 16,
            ..FlNetConfig::new(decentralized_routability::eda::features::FEATURE_CHANNELS)
        },
        &mut rng,
    );
    println!("FLNet with {} parameters", model.param_count());

    // 3. Train on the client's private data.
    let (train_x, train_y) = client.train.full_batch()?;
    let train = ClientSet::new(train_x, train_y)?;
    let trainer = LocalTrainer::new(2e-3, 1e-5, 0.0, 4);
    let mut train_rng = Xoshiro256::seed_from(7);
    for epoch in 1..=5 {
        let loss = trainer.train(&mut model, &train, None, 30, &mut train_rng)?;
        println!("epoch {epoch}: training MSE {loss:.4}");
    }

    // 4. Evaluate on completely unseen designs.
    let (test_x, test_y) = client.test.full_batch()?;
    let test = ClientSet::new(test_x, test_y)?;
    let auc = evaluate_auc(&mut model, &test, 16)?;
    println!("test ROC AUC on unseen designs: {auc:.3}");
    println!("(paper's local-only FLNet baseline on client 1: 0.76)");
    Ok(())
}
