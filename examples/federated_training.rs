//! Federated training across the paper's nine clients: builds the Table 2
//! corpus, runs FedProx on FLNet without any client's data leaving its
//! silo, and compares against the local-only baselines.
//!
//! ```text
//! cargo run --release --example federated_training
//! ```

use decentralized_routability::core::{build_clients, run_method_on_clients, ExperimentConfig};
use decentralized_routability::eda::corpus::generate_corpus;
use decentralized_routability::fed::Method;
use decentralized_routability::nn::models::ModelKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Quick settings: a few rounds over a reduced corpus. Use the
    // rte-bench binaries for the full experiment matrix.
    let mut config = ExperimentConfig::scaled();
    config.corpus.placement_scale = 0.03;
    config.fed.rounds = 5;
    config.fed.local_steps = 10;

    println!("generating the nine-client Table 2 corpus …");
    let corpus = generate_corpus(&config.corpus)?;
    let clients = build_clients(&corpus)?;
    for c in &clients {
        println!(
            "  client {}: {} train / {} test placements",
            c.id,
            c.weight(),
            c.test.len()
        );
    }

    println!("\ntraining local baselines (b1..b9) …");
    let local = run_method_on_clients(Method::LocalOnly, &clients, ModelKind::FlNet, &config)?;

    println!("running FedProx for {} rounds …", config.fed.rounds);
    let fedprox = run_method_on_clients(Method::FedProx, &clients, ModelKind::FlNet, &config)?;

    println!("\nper-client ROC AUC (higher is better):");
    println!("{:<10} {:>8} {:>8}", "client", "local", "FedProx");
    for k in 0..clients.len() {
        println!(
            "{:<10} {:>8.3} {:>8.3}",
            format!("client {}", k + 1),
            local.per_client_auc[k],
            fedprox.per_client_auc[k]
        );
    }
    println!(
        "{:<10} {:>8.3} {:>8.3}",
        "average", local.average_auc, fedprox.average_auc
    );
    println!(
        "\npaper (Table 3, full scale): local 0.72, FedProx 0.78 — collaboration\n\
         should lift the average without any raw data ever being shared."
    );
    Ok(())
}
