//! A tour of the EDA data substrate: synthesize a design, place it, route
//! it probabilistically, extract the §4.4 features and the DRC hotspot
//! labels, and render them as ASCII heat maps.
//!
//! ```text
//! cargo run --release --example data_generation
//! ```

use decentralized_routability::eda::congestion::route_demand;
use decentralized_routability::eda::dataset::generate_sample;
use decentralized_routability::eda::netlist::generate_netlist;
use decentralized_routability::eda::placement::{place, PlacementConfig};
use decentralized_routability::eda::Family;

const SHADES: &[char] = &[' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];

fn heatmap(values: &[f32], w: usize, h: usize) -> String {
    let max = values.iter().copied().fold(f32::MIN, f32::max).max(1e-9);
    let mut out = String::new();
    for y in 0..h {
        for x in 0..w {
            let v = values[y * w + x] / max;
            let idx = ((v * (SHADES.len() - 1) as f32).round() as usize).min(SHADES.len() - 1);
            out.push(SHADES[idx]);
        }
        out.push('\n');
    }
    out
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Synthesize an IWLS'05-style design.
    let netlist = generate_netlist(Family::Iwls05, 2024)?;
    println!(
        "design {}: {} cells ({} macros), {} nets, avg degree {:.2}, {} clusters",
        netlist.name,
        netlist.cells.len(),
        netlist.macro_count(),
        netlist.nets.len(),
        netlist.avg_net_degree(),
        netlist.cluster_count
    );

    // 2. Place it on a 16×16 gcell grid.
    let config = PlacementConfig::new(16, 16, 1);
    let placement = place(&netlist, &config)?;
    println!("\ncell density (16×16 gcells):");
    let density: Vec<f32> = placement
        .cell_density(&netlist)
        .into_iter()
        .map(|v| v as f32)
        .collect();
    println!("{}", heatmap(&density, 16, 16));

    // 3. Probabilistic global routing demand.
    let demand = route_demand(&netlist, &placement);
    let combined: Vec<f32> = demand.combined().into_iter().map(|v| v as f32).collect();
    println!("routing demand (horizontal + vertical):");
    println!("{}", heatmap(&combined, 16, 16));

    // 4. Full sample: features + DRC hotspot labels.
    let sample = generate_sample(&netlist, &config)?;
    println!(
        "feature tensor {} / label tensor {}",
        sample.features.shape(),
        sample.label.shape()
    );
    println!("DRC hotspot ground truth ('#' = hotspot):");
    let mut label_map = String::new();
    for y in 0..16 {
        for x in 0..16 {
            label_map.push(if sample.label.at(&[0, y, x]) > 0.5 {
                '#'
            } else {
                '.'
            });
        }
        label_map.push('\n');
    }
    println!("{label_map}");
    let rate = sample.label.data().iter().filter(|&&v| v > 0.5).count() as f64 / 256.0;
    println!("hotspot rate: {:.1}%", rate * 100.0);
    Ok(())
}
