//! Deployment round trip: train a generalized model with FedProx, save it
//! to disk the way an EDA developer would ship it, load it back and verify
//! the deployed copy scores identically on a client's private test data.
//!
//! ```text
//! cargo run --release --example model_deployment
//! ```

use std::fs::File;

use decentralized_routability::core::{build_clients, model_factory, ExperimentConfig};
use decentralized_routability::eda::corpus::generate_corpus;
use decentralized_routability::fed::evaluate_auc;
use decentralized_routability::fed::methods::fedprox_rounds;
use decentralized_routability::nn::load_state_dict;
use decentralized_routability::nn::models::{ModelKind, ModelScale};
use decentralized_routability::nn::serialize::{read_state_dict, write_state_dict};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut config = ExperimentConfig::scaled();
    config.corpus.placement_scale = 0.02;
    config.fed.rounds = 3;
    config.fed.local_steps = 8;

    println!("training a generalized FLNet with FedProx …");
    let corpus = generate_corpus(&config.corpus)?;
    let clients = build_clients(&corpus)?;
    let factory = model_factory(ModelKind::FlNet, ModelScale::Scaled);
    let (global, _) = fedprox_rounds(&clients, &factory, &config.fed)?;

    // Ship it: persist the aggregated parameters.
    let path = std::env::temp_dir().join("flnet_global.rtesd");
    write_state_dict(&mut File::create(&path)?, &global)?;
    let bytes = std::fs::metadata(&path)?.len();
    println!("saved global model to {} ({bytes} bytes)", path.display());

    // Client side: load and evaluate on private test data.
    let loaded = read_state_dict(&mut File::open(&path)?)?;
    let mut deployed = factory(config.fed.seed);
    load_state_dict(deployed.as_mut(), &loaded)?;

    let mut reference = factory(config.fed.seed);
    load_state_dict(reference.as_mut(), &global)?;

    println!("\nper-client AUC of the deployed (disk round-tripped) model:");
    for client in &clients {
        let auc_deployed = evaluate_auc(deployed.as_mut(), &client.test, 16)?;
        let auc_reference = evaluate_auc(reference.as_mut(), &client.test, 16)?;
        assert!(
            (auc_deployed - auc_reference).abs() < 1e-12,
            "serialization must be lossless"
        );
        println!("  client {}: {auc_deployed:.3}", client.id);
    }
    println!("\ndeployed model is bit-identical to the trained one.");
    std::fs::remove_file(&path)?;
    Ok(())
}
