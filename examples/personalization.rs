//! Personalization: starting from a FedProx-trained generalized model,
//! each client fine-tunes on its own private data — the paper's best
//! personalization technique (Table 3: 0.78 → 0.80 average).
//!
//! ```text
//! cargo run --release --example personalization
//! ```

use decentralized_routability::core::{build_clients, run_method_on_clients, ExperimentConfig};
use decentralized_routability::eda::corpus::generate_corpus;
use decentralized_routability::fed::Method;
use decentralized_routability::nn::models::ModelKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut config = ExperimentConfig::scaled();
    config.corpus.placement_scale = 0.03;
    config.fed.rounds = 5;
    config.fed.local_steps = 10;
    config.fed.finetune_steps = 60;

    println!("generating corpus and running FedProx vs FedProx + fine-tuning …");
    let corpus = generate_corpus(&config.corpus)?;
    let clients = build_clients(&corpus)?;

    let generalized = run_method_on_clients(Method::FedProx, &clients, ModelKind::FlNet, &config)?;
    let personalized =
        run_method_on_clients(Method::FedProxFinetune, &clients, ModelKind::FlNet, &config)?;

    println!("\nper-client ROC AUC:");
    println!(
        "{:<10} {:>10} {:>12} {:>8}",
        "client", "FedProx", "+fine-tune", "gain"
    );
    let mut improved = 0;
    for k in 0..clients.len() {
        let a = generalized.per_client_auc[k];
        let b = personalized.per_client_auc[k];
        if b > a {
            improved += 1;
        }
        println!(
            "{:<10} {:>10.3} {:>12.3} {:>+8.3}",
            format!("client {}", k + 1),
            a,
            b,
            b - a
        );
    }
    println!(
        "{:<10} {:>10.3} {:>12.3} {:>+8.3}",
        "average",
        generalized.average_auc,
        personalized.average_auc,
        personalized.average_auc - generalized.average_auc
    );
    println!(
        "\n{improved}/{} clients improved by fine-tuning.",
        clients.len()
    );
    println!(
        "Paper (Table 3): fine-tuning lifts the average from 0.78 to 0.80,\n\
         trading model generality for local accuracy at a small training cost."
    );
    Ok(())
}
