//! Decentralized routability estimation — umbrella crate.
//!
//! Re-exports the workspace crates that reproduce *"Towards Collaborative
//! Intelligence: Routability Estimation based on Decentralized Private
//! Data"* (DAC 2022). See the `README.md` for a tour and `DESIGN.md` for
//! the system inventory.
//!
//! # Example
//!
//! ```
//! use decentralized_routability::nn::models::ModelKind;
//! use decentralized_routability::nn::Layer;
//!
//! // Build the paper's FLNet and check it is the smallest model.
//! use decentralized_routability::nn::models::{build_model, ModelScale};
//! use decentralized_routability::tensor::rng::Xoshiro256;
//!
//! let mut rng = Xoshiro256::seed_from(0);
//! let mut flnet = build_model(ModelKind::FlNet, 6, ModelScale::Scaled, &mut rng);
//! assert!(flnet.param_count() > 0);
//! ```

// The umbrella crate is pure safe Rust; all `unsafe` in the workspace
// lives in `rte_tensor::simd` (rte-lint rule L1 enforces this).
#![forbid(unsafe_code)]

pub use rte_core as core;
pub use rte_eda as eda;
pub use rte_fed as fed;
pub use rte_metrics as metrics;
pub use rte_net as net;
pub use rte_nn as nn;
pub use rte_tensor as tensor;
