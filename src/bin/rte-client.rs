//! Federated client: one party of the decentralized fleet, as its own
//! process.
//!
//! The client rebuilds the *entire* experiment config from the shared
//! `(clients, seed, quick)` triple, generates only its own private
//! train/test split locally, connects to the coordinator's Unix-domain
//! socket, and then answers deploy frames with locally trained
//! parameter sets until the coordinator shuts the session down. Data
//! never leaves the process — the paper's privacy boundary, enforced by
//! a process boundary.
//!
//! Spawned by `rte-coordinator --clients-procs N`, or started by hand:
//!
//! ```text
//! rte-client --socket /tmp/fed.sock --client-index 3 --clients 8 --quick --seed 42
//! ```

use std::path::PathBuf;
use std::time::Duration;

use decentralized_routability::core::{build_experiment_clients, model_factory, transport_config};
use decentralized_routability::fed::{ClientSession, SecureConfig};
use decentralized_routability::net::UdsTransport;
use decentralized_routability::nn::models::ModelKind;

struct Args {
    socket: PathBuf,
    client_index: usize,
    clients: usize,
    quick: bool,
    seed: u64,
    secure: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut socket = None;
    let mut client_index = None;
    let mut out = Args {
        socket: PathBuf::new(),
        client_index: 0,
        clients: 4,
        quick: false,
        seed: 7,
        secure: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--socket" => socket = Some(PathBuf::from(it.next().ok_or("--socket needs a path")?)),
            "--client-index" => {
                let v = it.next().ok_or("--client-index needs a value")?;
                client_index = Some(v.parse().map_err(|_| format!("bad index {v}"))?);
            }
            "--clients" => {
                let v = it.next().ok_or("--clients needs a value")?;
                out.clients = v.parse().map_err(|_| format!("bad client count {v}"))?;
            }
            "--quick" => out.quick = true,
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                out.seed = v.parse().map_err(|_| format!("bad seed {v}"))?;
            }
            "--secure" => out.secure = true,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    out.socket = socket.ok_or("--socket is required")?;
    out.client_index = client_index.ok_or("--client-index is required")?;
    if out.client_index >= out.clients {
        return Err(format!(
            "--client-index {} out of range for {} clients",
            out.client_index, out.clients
        ));
    }
    Ok(out)
}

/// Connects with retries — the coordinator may still be binding the
/// socket when a spawned client starts.
fn connect_with_retry(path: &PathBuf) -> Result<UdsTransport, Box<dyn std::error::Error>> {
    let mut last = None;
    for _ in 0..100 {
        match UdsTransport::connect(path) {
            Ok(t) => return Ok(t),
            Err(e) => {
                last = Some(e);
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
    Err(format!("could not connect to {}: {:?}", path.display(), last).into())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = parse_args().unwrap_or_else(|e| {
        eprintln!("error: {e}");
        eprintln!(
            "usage: rte-client --socket PATH --client-index K [--clients N] [--quick] \
             [--seed N] [--secure]"
        );
        std::process::exit(2);
    });

    let config = transport_config(args.clients, args.seed, args.quick);
    let fleet = build_experiment_clients(&config)?;
    let factory = model_factory(ModelKind::FlNet, config.model_scale);
    let secure = args.secure.then(SecureConfig::default);
    let mut session = ClientSession::new(&fleet, args.client_index, &factory, &config.fed, secure)?;

    let mut transport = connect_with_retry(&args.socket)?;
    session.hello(&mut transport)?;
    session.serve(&mut transport)?;
    Ok(())
}
