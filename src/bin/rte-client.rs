//! Federated client: one party of the decentralized fleet, as its own
//! process.
//!
//! The client rebuilds the *entire* experiment config from the shared
//! `(clients, seed, quick)` triple, generates only its own private
//! train/test split locally, connects to the coordinator's Unix-domain
//! socket, and then answers deploy frames with locally trained
//! parameter sets until the coordinator shuts the session down. Data
//! never leaves the process — the paper's privacy boundary, enforced by
//! a process boundary.
//!
//! Connection handling runs through a seeded [`RetryPolicy`]: the
//! initial dial retries with jittered backoff (the coordinator may
//! still be binding the socket), and a mid-run hang-up triggers a
//! reconnect + re-hello — every deploy carries its own round number, so
//! the session resyncs to whatever round the coordinator re-sends.
//!
//! Spawned by `rte-coordinator --clients-procs N`, or started by hand:
//!
//! ```text
//! rte-client --socket /tmp/fed.sock --client-index 3 --clients 8 --quick --seed 42
//! ```

use std::path::PathBuf;

use decentralized_routability::core::{
    build_experiment_clients, model_factory, transport_config_with_rounds,
};
use decentralized_routability::fed::{ClientSession, SecureConfig};
use decentralized_routability::net::{RetryPolicy, UdsTransport};
use decentralized_routability::nn::models::ModelKind;

struct Args {
    socket: PathBuf,
    client_index: usize,
    clients: usize,
    quick: bool,
    seed: u64,
    rounds: Option<usize>,
    secure: bool,
    retries: u32,
    backoff_ms: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut socket = None;
    let mut client_index = None;
    let mut out = Args {
        socket: PathBuf::new(),
        client_index: 0,
        clients: 4,
        quick: false,
        seed: 7,
        rounds: None,
        secure: false,
        retries: 100,
        backoff_ms: 50,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--socket" => socket = Some(PathBuf::from(it.next().ok_or("--socket needs a path")?)),
            "--client-index" => {
                let v = it.next().ok_or("--client-index needs a value")?;
                client_index = Some(v.parse().map_err(|_| format!("bad index {v}"))?);
            }
            "--clients" => {
                let v = it.next().ok_or("--clients needs a value")?;
                out.clients = v.parse().map_err(|_| format!("bad client count {v}"))?;
            }
            "--quick" => out.quick = true,
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                out.seed = v.parse().map_err(|_| format!("bad seed {v}"))?;
            }
            "--rounds" => {
                let v = it.next().ok_or("--rounds needs a value")?;
                let n: usize = v.parse().map_err(|_| format!("bad round count {v}"))?;
                if n == 0 {
                    return Err("--rounds must be positive".into());
                }
                out.rounds = Some(n);
            }
            "--secure" => out.secure = true,
            "--retries" => {
                let v = it.next().ok_or("--retries needs a value")?;
                out.retries = v.parse().map_err(|_| format!("bad retry count {v}"))?;
            }
            "--backoff-ms" => {
                let v = it.next().ok_or("--backoff-ms needs a value")?;
                out.backoff_ms = v.parse().map_err(|_| format!("bad backoff {v}"))?;
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    out.socket = socket.ok_or("--socket is required")?;
    out.client_index = client_index.ok_or("--client-index is required")?;
    if out.client_index >= out.clients {
        return Err(format!(
            "--client-index {} out of range for {} clients",
            out.client_index, out.clients
        ));
    }
    Ok(out)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = parse_args().unwrap_or_else(|e| {
        eprintln!("error: {e}");
        eprintln!(
            "usage: rte-client --socket PATH --client-index K [--clients N] [--quick] \
             [--seed N] [--rounds N] [--secure] [--retries N] [--backoff-ms N]"
        );
        std::process::exit(2);
    });

    let config = transport_config_with_rounds(args.clients, args.seed, args.quick, args.rounds);
    let fleet = build_experiment_clients(&config)?;
    let factory = model_factory(ModelKind::FlNet, config.model_scale);
    let secure = args.secure.then(SecureConfig::default);
    let mut session = ClientSession::new(&fleet, args.client_index, &factory, &config.fed, secure)?;

    // Jittered backoff salted by the client index so a spawned fleet
    // does not dial (or re-dial) in lockstep.
    let policy = RetryPolicy {
        max_attempts: args.retries.max(1),
        base_ms: args.backoff_ms,
        max_ms: args.backoff_ms.saturating_mul(16).max(1),
        jitter_seed: args.seed,
    };
    session.serve_with_reconnect(&policy, |_attempt| UdsTransport::connect(&args.socket))?;
    Ok(())
}
