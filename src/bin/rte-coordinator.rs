//! Federated coordinator: runs FedProx rounds against real client
//! processes over Unix-domain sockets (or an in-process channel fleet).
//!
//! The coordinator never sees client data — each `rte-client` process
//! regenerates its own private split from the shared `(clients, seed,
//! quick)` config, and only serialized parameter sets cross the socket.
//! In the default sync mode the printed table is byte-identical to the
//! in-process `rte-bench` FedProx row for the same config
//! (`tests/transport_determinism.rs` pins this). `--async virtual` runs
//! the seeded virtual-clock buffered schedule (determinism rule 8);
//! `--async wall` is the documented non-deterministic opt-out.
//!
//! Synchronous non-secure rounds run through the fault-tolerant loop
//! ([`run_rounds_resilient`]) — faultless, it is bit-identical to the
//! plain loop. On top of it this binary exposes:
//!
//! - `--chaos-*` — seeded fault injection (determinism rule 9): every
//!   coordinator-side link is wrapped in a [`ChaosTransport`] whose
//!   drop/duplicate/reorder/corrupt/latency decisions replay bit-for-bit
//!   under the same `--chaos-seed`,
//! - `--deadline-ms` / `--retries` / `--backoff-ms` / `--min-quorum` —
//!   per-client read deadlines, seeded-jitter retry budget, and quorum
//!   degradation (missed clients are reported on stderr, never stdout),
//! - `--checkpoint-dir` / `--checkpoint-every` / `--resume` — versioned
//!   CRC'd checkpoints written atomically after a round; a resumed run
//!   prints the same table bytes as an uninterrupted one
//!   (`tests/checkpoint_resume.rs` pins this). `--die-after N` exits
//!   with code 17 right after round N's checkpoint — the kill half of
//!   the kill-and-resume test.
//!
//! ```text
//! rte-coordinator --clients 8 --clients-procs 8 --quick --seed 42
//! rte-coordinator --transport channel --quick --async virtual
//! rte-coordinator --transport channel --quick --rounds 4 \
//!     --chaos-seed 7 --chaos-drop 0.2 --retries 4 --min-quorum 2
//! rte-coordinator --transport channel --quick --rounds 4 \
//!     --checkpoint-dir /tmp/ckpt --die-after 2   # then: --resume
//! ```

use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::Duration;

use decentralized_routability::core::report::render_table;
use decentralized_routability::core::{
    build_experiment_clients, model_factory, transport_config_with_rounds, ExperimentConfig,
    TableResult,
};
use decentralized_routability::fed::{
    config_digest, latest_checkpoint, local_links, read_checkpoint, render_async_history,
    run_fedasync, run_fedasync_wall, run_rounds_over, run_rounds_resilient, write_checkpoint,
    AsyncConfig, Checkpoint, Client, ClientSession, FaultPolicy, LinkExecutor, Method,
    MethodOutcome, ModelFactory, ResumePoint, RoundHook, SecureConfig,
};
use decentralized_routability::net::{
    ChaosConfig, ChaosTransport, FanIn, RetryPolicy, Transport, UdsListener, UdsTransport,
};
use decentralized_routability::nn::models::ModelKind;
use decentralized_routability::nn::StateDict;

/// Exit code of a run that stopped itself via `--die-after` (chosen to
/// be distinguishable from success, panics, and flag errors).
const DIE_AFTER_EXIT: i32 = 17;

/// How long [`accept_fleet`] waits for the whole fleet to dial in
/// before giving up — generous (slow CI, debug builds) but bounded, so
/// a client that never starts cannot wedge the coordinator forever.
const ACCEPT_DEADLINE: Duration = Duration::from_secs(120);

/// Which backend carries the frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TransportKind {
    /// Unix-domain sockets to real client processes (the default).
    Uds,
    /// In-process channel links — no processes, same wire codec.
    Channel,
}

/// Which round schedule runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AsyncMode {
    /// Synchronous FedProx rounds.
    Off,
    /// Buffered async on the seeded virtual clock (deterministic).
    Virtual,
    /// Buffered async on real arrival order (the documented opt-out;
    /// not reproducible).
    Wall,
}

struct Args {
    socket: PathBuf,
    clients: usize,
    clients_procs: usize,
    quick: bool,
    seed: u64,
    rounds: Option<usize>,
    transport: TransportKind,
    r#async: AsyncMode,
    secure: bool,
    aggregations: usize,
    buffer: usize,
    chaos: ChaosConfig,
    deadline_ms: u64,
    retries: u32,
    backoff_ms: u64,
    min_quorum: usize,
    checkpoint_dir: Option<PathBuf>,
    checkpoint_every: usize,
    resume: bool,
    die_after: Option<usize>,
}

fn parse_args() -> Result<Args, String> {
    let mut out = Args {
        socket: std::env::temp_dir().join(format!("rte-fed-{}.sock", std::process::id())),
        clients: 4,
        clients_procs: 0,
        quick: false,
        seed: 7,
        rounds: None,
        transport: TransportKind::Uds,
        r#async: AsyncMode::Off,
        secure: false,
        aggregations: 4,
        buffer: 0,
        chaos: ChaosConfig::default(),
        deadline_ms: 5000,
        retries: 3,
        backoff_ms: 50,
        min_quorum: 1,
        checkpoint_dir: None,
        checkpoint_every: 1,
        resume: false,
        die_after: None,
    };
    let mut chaos_seed: Option<u64> = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--socket" => out.socket = PathBuf::from(it.next().ok_or("--socket needs a path")?),
            "--clients" => {
                let v = it.next().ok_or("--clients needs a value")?;
                out.clients = v.parse().map_err(|_| format!("bad client count {v}"))?;
                if out.clients == 0 {
                    return Err("--clients must be positive".into());
                }
            }
            "--clients-procs" => {
                let v = it.next().ok_or("--clients-procs needs a value")?;
                out.clients_procs = v.parse().map_err(|_| format!("bad process count {v}"))?;
            }
            "--quick" => out.quick = true,
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                out.seed = v.parse().map_err(|_| format!("bad seed {v}"))?;
            }
            "--rounds" => {
                let v = it.next().ok_or("--rounds needs a value")?;
                let n: usize = v.parse().map_err(|_| format!("bad round count {v}"))?;
                if n == 0 {
                    return Err("--rounds must be positive".into());
                }
                out.rounds = Some(n);
            }
            "--transport" => {
                out.transport = match it.next().as_deref() {
                    Some("uds") => TransportKind::Uds,
                    Some("channel") => TransportKind::Channel,
                    other => return Err(format!("--transport must be uds|channel, got {other:?}")),
                };
            }
            "--async" => {
                out.r#async = match it.next().as_deref() {
                    Some("off") => AsyncMode::Off,
                    Some("virtual") => AsyncMode::Virtual,
                    Some("wall") => AsyncMode::Wall,
                    other => {
                        return Err(format!("--async must be off|virtual|wall, got {other:?}"))
                    }
                };
            }
            "--secure" => out.secure = true,
            "--aggregations" => {
                let v = it.next().ok_or("--aggregations needs a value")?;
                out.aggregations = v.parse().map_err(|_| format!("bad aggregations {v}"))?;
            }
            "--buffer" => {
                let v = it.next().ok_or("--buffer needs a value")?;
                out.buffer = v.parse().map_err(|_| format!("bad buffer {v}"))?;
            }
            "--chaos-seed" => chaos_seed = Some(parse_num(&mut it, "--chaos-seed")?),
            "--chaos-drop" => out.chaos.drop_p = parse_prob(&mut it, "--chaos-drop")?,
            "--chaos-dup" => out.chaos.dup_p = parse_prob(&mut it, "--chaos-dup")?,
            "--chaos-reorder" => out.chaos.reorder_p = parse_prob(&mut it, "--chaos-reorder")?,
            "--chaos-corrupt" => out.chaos.corrupt_p = parse_prob(&mut it, "--chaos-corrupt")?,
            "--chaos-window" => {
                out.chaos.reorder_window = parse_num::<usize>(&mut it, "--chaos-window")?
            }
            "--chaos-latency-min" => {
                out.chaos.latency_min = parse_num(&mut it, "--chaos-latency-min")?
            }
            "--chaos-latency-max" => {
                out.chaos.latency_max = parse_num(&mut it, "--chaos-latency-max")?
            }
            "--deadline-ms" => out.deadline_ms = parse_num(&mut it, "--deadline-ms")?,
            "--retries" => out.retries = parse_num(&mut it, "--retries")?,
            "--backoff-ms" => out.backoff_ms = parse_num(&mut it, "--backoff-ms")?,
            "--min-quorum" => out.min_quorum = parse_num(&mut it, "--min-quorum")?,
            "--checkpoint-dir" => {
                out.checkpoint_dir = Some(PathBuf::from(
                    it.next().ok_or("--checkpoint-dir needs a path")?,
                ))
            }
            "--checkpoint-every" => {
                out.checkpoint_every = parse_num(&mut it, "--checkpoint-every")?;
                if out.checkpoint_every == 0 {
                    return Err("--checkpoint-every must be positive".into());
                }
            }
            "--resume" => out.resume = true,
            "--die-after" => out.die_after = Some(parse_num(&mut it, "--die-after")?),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if out.buffer == 0 {
        out.buffer = (out.clients / 2).max(1);
    }
    // Chaos streams are salted so they never collide with training, but
    // an explicit --chaos-seed lets the fault schedule vary while the
    // learning problem stays fixed.
    out.chaos.seed = chaos_seed.unwrap_or(out.seed);
    out.chaos
        .validate()
        .map_err(|e| format!("bad chaos config: {e}"))?;
    if out.secure && out.r#async != AsyncMode::Off {
        return Err("--secure only applies to synchronous rounds".into());
    }
    if out.r#async == AsyncMode::Wall && out.transport != TransportKind::Uds {
        return Err("--async wall needs --transport uds (real arrival order)".into());
    }
    if out.clients_procs > 0 && out.transport != TransportKind::Uds {
        return Err("--clients-procs only applies to --transport uds".into());
    }
    let resilient_only = out.r#async == AsyncMode::Off && !out.secure;
    if !out.chaos.is_noop() && !resilient_only {
        return Err("--chaos-* needs synchronous non-secure rounds (the resilient loop)".into());
    }
    if (out.checkpoint_dir.is_some() || out.resume || out.die_after.is_some()) && !resilient_only {
        return Err("checkpointing needs synchronous non-secure rounds".into());
    }
    if out.checkpoint_dir.is_none() && (out.resume || out.die_after.is_some()) {
        return Err("--resume / --die-after need --checkpoint-dir".into());
    }
    if out.min_quorum == 0 || out.min_quorum > out.clients {
        return Err(format!(
            "--min-quorum must be in 1..={}, got {}",
            out.clients, out.min_quorum
        ));
    }
    Ok(out)
}

/// Parses the next argument as a number for flag `name`.
fn parse_num<T: std::str::FromStr>(
    it: &mut impl Iterator<Item = String>,
    name: &str,
) -> Result<T, String> {
    let v = it.next().ok_or(format!("{name} needs a value"))?;
    v.parse().map_err(|_| format!("bad value for {name}: {v}"))
}

/// Parses the next argument as a probability in `[0, 1]`.
fn parse_prob(it: &mut impl Iterator<Item = String>, name: &str) -> Result<f64, String> {
    let p: f64 = parse_num(it, name)?;
    if !(0.0..=1.0).contains(&p) {
        return Err(format!("{name} must be in [0, 1], got {p}"));
    }
    Ok(p)
}

/// Spawns `n` `rte-client` child processes (the binary is expected next
/// to the coordinator's own executable).
fn spawn_clients(args: &Args, n: usize) -> Result<Vec<Child>, Box<dyn std::error::Error>> {
    let me = std::env::current_exe()?;
    let client_bin = me
        .parent()
        .ok_or("coordinator binary has no parent directory")?
        .join("rte-client");
    (0..n)
        .map(|k| {
            let mut cmd = Command::new(&client_bin);
            cmd.arg("--socket")
                .arg(&args.socket)
                .arg("--client-index")
                .arg(k.to_string())
                .arg("--clients")
                .arg(args.clients.to_string())
                .arg("--seed")
                .arg(args.seed.to_string())
                .stdout(Stdio::null());
            if let Some(rounds) = args.rounds {
                cmd.arg("--rounds").arg(rounds.to_string());
            }
            if args.quick {
                cmd.arg("--quick");
            }
            if args.secure {
                cmd.arg("--secure");
            }
            Ok(cmd.spawn()?)
        })
        .collect()
}

/// Hosts every client past `--clients-procs` as an in-process thread:
/// the same [`ClientSession`] the `rte-client` binary wraps, speaking
/// the same frames over the same socket — the process boundary is a
/// deployment choice, not a protocol one (determinism rule 7). The
/// threads share the already-built fleet instead of regenerating it;
/// a failed session aborts the run loudly rather than leaving the
/// coordinator accepting forever.
fn serve_thread_clients(
    args: &Args,
    fleet: &Arc<Vec<Client>>,
    factory: &Arc<ModelFactory>,
    config: &Arc<ExperimentConfig>,
    secure: Option<SecureConfig>,
) {
    for k in args.clients_procs..fleet.len() {
        let fleet = Arc::clone(fleet);
        let factory = Arc::clone(factory);
        let config = Arc::clone(config);
        let socket = args.socket.clone();
        // rte-lint: allow(L5) thread-hosted clients: each thread is one
        // client's serve loop, blocked on its own socket — no shared
        // reduction, no schedule of its own; the training it performs
        // still goes through the one rte_tensor::parallel pool.
        std::thread::spawn(move || {
            let serve = || -> Result<(), Box<dyn std::error::Error>> {
                let mut session = ClientSession::new(&fleet, k, &factory, &config.fed, secure)?;
                let mut transport = UdsTransport::connect(&socket)?;
                session.hello(&mut transport)?;
                session.serve(&mut transport)?;
                Ok(())
            };
            if let Err(e) = serve() {
                eprintln!("thread-hosted client {k}: {e}");
                std::process::exit(1);
            }
        });
    }
}

/// Accepts `n` connections and orders them by the fleet index each
/// client announces in its hello frame. Both the accept and the hello
/// read are deadline-bounded ([`ACCEPT_DEADLINE`]): a client that never
/// dials, or dials and then goes silent, is a typed error — not a
/// coordinator wedged in a blocking read.
fn accept_fleet(
    listener: &UdsListener,
    n: usize,
) -> Result<Vec<UdsTransport>, Box<dyn std::error::Error>> {
    let mut slots: Vec<Option<UdsTransport>> = (0..n).map(|_| None).collect();
    for _ in 0..n {
        let mut link = listener.accept_timeout(ACCEPT_DEADLINE)?;
        let (sender, message) =
            decentralized_routability::fed::wire::recv_message_within(&mut link, ACCEPT_DEADLINE)?;
        let decentralized_routability::fed::wire::Message::Hello { client, .. } = message else {
            return Err(format!("peer {sender} did not open with a hello").into());
        };
        let slot = client as usize;
        if slot >= n || slots[slot].is_some() {
            return Err(format!("client {client} is out of range or a duplicate").into());
        }
        slots[slot] = Some(link);
    }
    Ok(slots
        .into_iter()
        .map(|s| s.expect("all slots filled"))
        .collect())
}

/// Runs the resilient loop over `links`, wrapping each in a seeded
/// [`ChaosTransport`] (lane = fleet index) when the palette is armed.
fn run_resilient<T: Transport>(
    links: Vec<T>,
    fleet: &[Client],
    factory: &ModelFactory,
    config: &ExperimentConfig,
    args: &Args,
) -> Result<MethodOutcome, Box<dyn std::error::Error>> {
    if args.chaos.is_noop() {
        let mut links = links;
        return drive_resilient(&mut links, fleet, factory, config, args);
    }
    let mut wrapped = links
        .into_iter()
        .enumerate()
        .map(|(lane, link)| ChaosTransport::new(link, args.chaos.clone(), lane as u64))
        .collect::<Result<Vec<_>, _>>()?;
    let outcome = drive_resilient(&mut wrapped, fleet, factory, config, args)?;
    let mut totals = (0u64, 0u64, 0u64, 0u64, 0u64);
    for link in &wrapped {
        let s = link.stats();
        totals.0 += s.frames_sent;
        totals.1 += s.drops;
        totals.2 += s.dups;
        totals.3 += s.reorders;
        totals.4 += s.corruptions;
    }
    eprintln!(
        "chaos: seed {} over {} frames: {} dropped, {} duplicated, {} reordered, {} corrupted",
        args.chaos.seed, totals.0, totals.1, totals.2, totals.3, totals.4
    );
    Ok(outcome)
}

/// The resilient run itself: fault policy from the flags, checkpoint
/// hook (and the `--die-after` kill switch) when a checkpoint dir is
/// configured, resume point from the newest valid checkpoint under
/// `--resume`. Fault events go to stderr; stdout stays table-only.
fn drive_resilient<T: Transport>(
    links: &mut [T],
    fleet: &[Client],
    factory: &ModelFactory,
    config: &ExperimentConfig,
    args: &Args,
) -> Result<MethodOutcome, Box<dyn std::error::Error>> {
    let policy = FaultPolicy {
        deadline: Duration::from_millis(args.deadline_ms.max(1)),
        retry: RetryPolicy {
            max_attempts: args.retries.max(1),
            base_ms: args.backoff_ms,
            max_ms: args.backoff_ms.saturating_mul(16).max(1),
            jitter_seed: args.seed,
        },
        min_quorum: args.min_quorum,
    };
    let digest = config_digest(&config.fed, fleet);

    let resume = match &args.checkpoint_dir {
        Some(dir) if args.resume => match latest_checkpoint(dir)? {
            Some(path) => {
                let ckpt = read_checkpoint(&path, Some(digest))?;
                eprintln!(
                    "resume: round {} from {} (digest {:016x})",
                    ckpt.round,
                    path.display(),
                    digest
                );
                Some(ResumePoint {
                    round: ckpt.round as usize,
                    seq: ckpt.seq,
                    state: ckpt.state,
                })
            }
            None => {
                eprintln!("resume: no checkpoint in {}, starting fresh", dir.display());
                None
            }
        },
        _ => None,
    };

    let mut hook_storage;
    let hook: Option<&mut RoundHook<'_>> = match &args.checkpoint_dir {
        Some(dir) => {
            std::fs::create_dir_all(dir)
                .map_err(|e| format!("checkpoint dir {}: {e}", dir.display()))?;
            let dir = dir.clone();
            let every = args.checkpoint_every;
            let die_after = args.die_after;
            let rounds = config.fed.rounds;
            hook_storage = move |round: usize, seq: u64, state: &StateDict| {
                if round % every == 0 || round == rounds || Some(round) == die_after {
                    let ckpt = Checkpoint {
                        round: round as u64,
                        seq,
                        digest,
                        state: state.clone(),
                    };
                    let path = write_checkpoint(&dir, &ckpt)?;
                    eprintln!("checkpoint: round {round} -> {}", path.display());
                }
                if Some(round) == die_after {
                    eprintln!("die-after: stopping after round {round} (exit {DIE_AFTER_EXIT})");
                    std::process::exit(DIE_AFTER_EXIT);
                }
                Ok(())
            };
            Some(&mut hook_storage)
        }
        None => None,
    };

    let result = run_rounds_resilient(fleet, factory, &config.fed, links, &policy, resume, hook)?;
    for event in &result.events {
        eprintln!("fault: {event}");
    }
    if result.retries > 0 || !result.events.is_empty() {
        eprintln!(
            "resilient: {} rounds completed, {} retries, {} fault events",
            result.completed_rounds,
            result.retries,
            result.events.len()
        );
    }
    Ok(result.outcome)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = parse_args().unwrap_or_else(|e| {
        eprintln!("error: {e}");
        eprintln!(
            "usage: rte-coordinator [--socket PATH] [--clients N] [--clients-procs N] \
             [--quick] [--seed N] [--rounds N] [--transport uds|channel] \
             [--async off|virtual|wall] [--secure] [--aggregations N] [--buffer N] \
             [--chaos-seed N] [--chaos-drop P] [--chaos-dup P] [--chaos-reorder P] \
             [--chaos-corrupt P] [--chaos-window N] [--chaos-latency-min N] \
             [--chaos-latency-max N] [--deadline-ms N] [--retries N] [--backoff-ms N] \
             [--min-quorum N] [--checkpoint-dir PATH] [--checkpoint-every N] [--resume] \
             [--die-after N]"
        );
        std::process::exit(2);
    });

    let config = Arc::new(transport_config_with_rounds(
        args.clients,
        args.seed,
        args.quick,
        args.rounds,
    ));
    let fleet = Arc::new(build_experiment_clients(&config)?);
    let factory = Arc::new(model_factory(ModelKind::FlNet, config.model_scale));
    let secure = args.secure.then(SecureConfig::default);
    eprintln!(
        "coordinator: {} clients over {:?}, async {:?}{}{}",
        fleet.len(),
        args.transport,
        args.r#async,
        if args.secure { ", secure" } else { "" },
        if args.chaos.is_noop() { "" } else { ", chaos" }
    );

    let mut children = Vec::new();
    let outcome = match args.transport {
        TransportKind::Channel => {
            let mut links = local_links(&fleet, &factory, &config.fed, secure)?;
            match args.r#async {
                AsyncMode::Off => {
                    if args.secure {
                        run_rounds_over(
                            Method::FedProx,
                            &fleet,
                            &factory,
                            &config.fed,
                            &mut links,
                            secure,
                        )?
                    } else {
                        run_resilient(links, &fleet, &factory, &config, &args)?
                    }
                }
                AsyncMode::Virtual => {
                    let async_cfg = AsyncConfig::new(args.aggregations, args.buffer);
                    let mut exec = LinkExecutor::new(&mut links);
                    let (outcome, records) =
                        run_fedasync(&fleet, &factory, &config.fed, &async_cfg, &mut exec)?;
                    println!(
                        "{}",
                        render_async_history("Async schedule (virtual clock)", &records)
                    );
                    outcome
                }
                AsyncMode::Wall => unreachable!("rejected at parse time"),
            }
        }
        TransportKind::Uds => {
            let listener = UdsListener::bind(&args.socket)?;
            if args.clients_procs > 0 {
                children = spawn_clients(&args, args.clients_procs)?;
            }
            serve_thread_clients(&args, &fleet, &factory, &config, secure);
            let mut links = accept_fleet(&listener, fleet.len())?;
            let outcome = match args.r#async {
                AsyncMode::Off => {
                    if args.secure {
                        run_rounds_over(
                            Method::FedProx,
                            &fleet,
                            &factory,
                            &config.fed,
                            &mut links,
                            secure,
                        )?
                    } else {
                        run_resilient(links, &fleet, &factory, &config, &args)?
                    }
                }
                AsyncMode::Virtual => {
                    let async_cfg = AsyncConfig::new(args.aggregations, args.buffer);
                    let mut exec = LinkExecutor::new(&mut links);
                    let (outcome, records) =
                        run_fedasync(&fleet, &factory, &config.fed, &async_cfg, &mut exec)?;
                    println!(
                        "{}",
                        render_async_history("Async schedule (virtual clock)", &records)
                    );
                    outcome
                }
                AsyncMode::Wall => {
                    let async_cfg = AsyncConfig::new(args.aggregations, args.buffer);
                    let mut send_links = links
                        .iter()
                        .map(UdsTransport::duplicate)
                        .collect::<Result<Vec<_>, _>>()?;
                    let mut fan = FanIn::new(links);
                    let (outcome, records) = run_fedasync_wall(
                        &fleet,
                        &factory,
                        &config.fed,
                        &async_cfg,
                        &mut send_links,
                        &mut fan,
                    )?;
                    println!(
                        "{}",
                        render_async_history(
                            "Async schedule (wall clock — NOT reproducible)",
                            &records
                        )
                    );
                    outcome
                }
            };
            let _ = std::fs::remove_file(&args.socket);
            outcome
        }
    };

    let table = TableResult {
        model: ModelKind::FlNet,
        n_clients: fleet.len(),
        rows: vec![outcome],
    };
    println!("{}", render_table(&table));

    for mut child in children {
        let status = child.wait()?;
        if !status.success() {
            return Err(format!("a client process exited with {status}").into());
        }
    }
    Ok(())
}
