//! Federated coordinator: runs FedProx rounds against real client
//! processes over Unix-domain sockets (or an in-process channel fleet).
//!
//! The coordinator never sees client data — each `rte-client` process
//! regenerates its own private split from the shared `(clients, seed,
//! quick)` config, and only serialized parameter sets cross the socket.
//! In the default sync mode the printed table is byte-identical to the
//! in-process `rte-bench` FedProx row for the same config
//! (`tests/transport_determinism.rs` pins this). `--async virtual` runs
//! the seeded virtual-clock buffered schedule (determinism rule 8);
//! `--async wall` is the documented non-deterministic opt-out.
//!
//! ```text
//! rte-coordinator --clients 8 --clients-procs 8 --quick --seed 42
//! rte-coordinator --transport channel --quick --async virtual
//! ```

use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::Arc;

use decentralized_routability::core::report::render_table;
use decentralized_routability::core::{
    build_experiment_clients, model_factory, transport_config, ExperimentConfig, TableResult,
};
use decentralized_routability::fed::{
    local_links, render_async_history, run_fedasync, run_fedasync_wall, run_rounds_over,
    AsyncConfig, Client, ClientSession, LinkExecutor, Method, ModelFactory, SecureConfig,
};
use decentralized_routability::net::{FanIn, UdsListener, UdsTransport};
use decentralized_routability::nn::models::ModelKind;

/// Which backend carries the frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TransportKind {
    /// Unix-domain sockets to real client processes (the default).
    Uds,
    /// In-process channel links — no processes, same wire codec.
    Channel,
}

/// Which round schedule runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AsyncMode {
    /// Synchronous FedProx rounds.
    Off,
    /// Buffered async on the seeded virtual clock (deterministic).
    Virtual,
    /// Buffered async on real arrival order (the documented opt-out;
    /// not reproducible).
    Wall,
}

struct Args {
    socket: PathBuf,
    clients: usize,
    clients_procs: usize,
    quick: bool,
    seed: u64,
    transport: TransportKind,
    r#async: AsyncMode,
    secure: bool,
    aggregations: usize,
    buffer: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut out = Args {
        socket: std::env::temp_dir().join(format!("rte-fed-{}.sock", std::process::id())),
        clients: 4,
        clients_procs: 0,
        quick: false,
        seed: 7,
        transport: TransportKind::Uds,
        r#async: AsyncMode::Off,
        secure: false,
        aggregations: 4,
        buffer: 0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--socket" => out.socket = PathBuf::from(it.next().ok_or("--socket needs a path")?),
            "--clients" => {
                let v = it.next().ok_or("--clients needs a value")?;
                out.clients = v.parse().map_err(|_| format!("bad client count {v}"))?;
                if out.clients == 0 {
                    return Err("--clients must be positive".into());
                }
            }
            "--clients-procs" => {
                let v = it.next().ok_or("--clients-procs needs a value")?;
                out.clients_procs = v.parse().map_err(|_| format!("bad process count {v}"))?;
            }
            "--quick" => out.quick = true,
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                out.seed = v.parse().map_err(|_| format!("bad seed {v}"))?;
            }
            "--transport" => {
                out.transport = match it.next().as_deref() {
                    Some("uds") => TransportKind::Uds,
                    Some("channel") => TransportKind::Channel,
                    other => return Err(format!("--transport must be uds|channel, got {other:?}")),
                };
            }
            "--async" => {
                out.r#async = match it.next().as_deref() {
                    Some("off") => AsyncMode::Off,
                    Some("virtual") => AsyncMode::Virtual,
                    Some("wall") => AsyncMode::Wall,
                    other => {
                        return Err(format!("--async must be off|virtual|wall, got {other:?}"))
                    }
                };
            }
            "--secure" => out.secure = true,
            "--aggregations" => {
                let v = it.next().ok_or("--aggregations needs a value")?;
                out.aggregations = v.parse().map_err(|_| format!("bad aggregations {v}"))?;
            }
            "--buffer" => {
                let v = it.next().ok_or("--buffer needs a value")?;
                out.buffer = v.parse().map_err(|_| format!("bad buffer {v}"))?;
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if out.buffer == 0 {
        out.buffer = (out.clients / 2).max(1);
    }
    if out.secure && out.r#async != AsyncMode::Off {
        return Err("--secure only applies to synchronous rounds".into());
    }
    if out.r#async == AsyncMode::Wall && out.transport != TransportKind::Uds {
        return Err("--async wall needs --transport uds (real arrival order)".into());
    }
    if out.clients_procs > 0 && out.transport != TransportKind::Uds {
        return Err("--clients-procs only applies to --transport uds".into());
    }
    Ok(out)
}

/// Spawns `n` `rte-client` child processes (the binary is expected next
/// to the coordinator's own executable).
fn spawn_clients(args: &Args, n: usize) -> Result<Vec<Child>, Box<dyn std::error::Error>> {
    let me = std::env::current_exe()?;
    let client_bin = me
        .parent()
        .ok_or("coordinator binary has no parent directory")?
        .join("rte-client");
    (0..n)
        .map(|k| {
            let mut cmd = Command::new(&client_bin);
            cmd.arg("--socket")
                .arg(&args.socket)
                .arg("--client-index")
                .arg(k.to_string())
                .arg("--clients")
                .arg(args.clients.to_string())
                .arg("--seed")
                .arg(args.seed.to_string())
                .stdout(Stdio::null());
            if args.quick {
                cmd.arg("--quick");
            }
            if args.secure {
                cmd.arg("--secure");
            }
            Ok(cmd.spawn()?)
        })
        .collect()
}

/// Hosts every client past `--clients-procs` as an in-process thread:
/// the same [`ClientSession`] the `rte-client` binary wraps, speaking
/// the same frames over the same socket — the process boundary is a
/// deployment choice, not a protocol one (determinism rule 7). The
/// threads share the already-built fleet instead of regenerating it;
/// a failed session aborts the run loudly rather than leaving the
/// coordinator accepting forever.
fn serve_thread_clients(
    args: &Args,
    fleet: &Arc<Vec<Client>>,
    factory: &Arc<ModelFactory>,
    config: &Arc<ExperimentConfig>,
    secure: Option<SecureConfig>,
) {
    for k in args.clients_procs..fleet.len() {
        let fleet = Arc::clone(fleet);
        let factory = Arc::clone(factory);
        let config = Arc::clone(config);
        let socket = args.socket.clone();
        // rte-lint: allow(L5) thread-hosted clients: each thread is one
        // client's serve loop, blocked on its own socket — no shared
        // reduction, no schedule of its own; the training it performs
        // still goes through the one rte_tensor::parallel pool.
        std::thread::spawn(move || {
            let serve = || -> Result<(), Box<dyn std::error::Error>> {
                let mut session = ClientSession::new(&fleet, k, &factory, &config.fed, secure)?;
                let mut transport = UdsTransport::connect(&socket)?;
                session.hello(&mut transport)?;
                session.serve(&mut transport)?;
                Ok(())
            };
            if let Err(e) = serve() {
                eprintln!("thread-hosted client {k}: {e}");
                std::process::exit(1);
            }
        });
    }
}

/// Accepts `n` connections and orders them by the fleet index each
/// client announces in its hello frame.
fn accept_fleet(
    listener: &UdsListener,
    n: usize,
) -> Result<Vec<UdsTransport>, Box<dyn std::error::Error>> {
    let mut slots: Vec<Option<UdsTransport>> = (0..n).map(|_| None).collect();
    for _ in 0..n {
        let mut link = listener.accept()?;
        let (sender, message) = decentralized_routability::fed::wire::recv_message(&mut link)?;
        let decentralized_routability::fed::wire::Message::Hello { client, .. } = message else {
            return Err(format!("peer {sender} did not open with a hello").into());
        };
        let slot = client as usize;
        if slot >= n || slots[slot].is_some() {
            return Err(format!("client {client} is out of range or a duplicate").into());
        }
        slots[slot] = Some(link);
    }
    Ok(slots
        .into_iter()
        .map(|s| s.expect("all slots filled"))
        .collect())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = parse_args().unwrap_or_else(|e| {
        eprintln!("error: {e}");
        eprintln!(
            "usage: rte-coordinator [--socket PATH] [--clients N] [--clients-procs N] \
             [--quick] [--seed N] [--transport uds|channel] [--async off|virtual|wall] \
             [--secure] [--aggregations N] [--buffer N]"
        );
        std::process::exit(2);
    });

    let config = Arc::new(transport_config(args.clients, args.seed, args.quick));
    let fleet = Arc::new(build_experiment_clients(&config)?);
    let factory = Arc::new(model_factory(ModelKind::FlNet, config.model_scale));
    let secure = args.secure.then(SecureConfig::default);
    eprintln!(
        "coordinator: {} clients over {:?}, async {:?}{}",
        fleet.len(),
        args.transport,
        args.r#async,
        if args.secure { ", secure" } else { "" }
    );

    let mut children = Vec::new();
    let outcome = match args.transport {
        TransportKind::Channel => {
            let mut links = local_links(&fleet, &factory, &config.fed, secure)?;
            match args.r#async {
                AsyncMode::Off => run_rounds_over(
                    Method::FedProx,
                    &fleet,
                    &factory,
                    &config.fed,
                    &mut links,
                    secure,
                )?,
                AsyncMode::Virtual => {
                    let async_cfg = AsyncConfig::new(args.aggregations, args.buffer);
                    let mut exec = LinkExecutor::new(&mut links);
                    let (outcome, records) =
                        run_fedasync(&fleet, &factory, &config.fed, &async_cfg, &mut exec)?;
                    println!(
                        "{}",
                        render_async_history("Async schedule (virtual clock)", &records)
                    );
                    outcome
                }
                AsyncMode::Wall => unreachable!("rejected at parse time"),
            }
        }
        TransportKind::Uds => {
            let listener = UdsListener::bind(&args.socket)?;
            if args.clients_procs > 0 {
                children = spawn_clients(&args, args.clients_procs)?;
            }
            serve_thread_clients(&args, &fleet, &factory, &config, secure);
            let mut links = accept_fleet(&listener, fleet.len())?;
            let outcome = match args.r#async {
                AsyncMode::Off => run_rounds_over(
                    Method::FedProx,
                    &fleet,
                    &factory,
                    &config.fed,
                    &mut links,
                    secure,
                )?,
                AsyncMode::Virtual => {
                    let async_cfg = AsyncConfig::new(args.aggregations, args.buffer);
                    let mut exec = LinkExecutor::new(&mut links);
                    let (outcome, records) =
                        run_fedasync(&fleet, &factory, &config.fed, &async_cfg, &mut exec)?;
                    println!(
                        "{}",
                        render_async_history("Async schedule (virtual clock)", &records)
                    );
                    outcome
                }
                AsyncMode::Wall => {
                    let async_cfg = AsyncConfig::new(args.aggregations, args.buffer);
                    let mut send_links = links
                        .iter()
                        .map(UdsTransport::duplicate)
                        .collect::<Result<Vec<_>, _>>()?;
                    let mut fan = FanIn::new(links);
                    let (outcome, records) = run_fedasync_wall(
                        &fleet,
                        &factory,
                        &config.fed,
                        &async_cfg,
                        &mut send_links,
                        &mut fan,
                    )?;
                    println!(
                        "{}",
                        render_async_history(
                            "Async schedule (wall clock — NOT reproducible)",
                            &records
                        )
                    );
                    outcome
                }
            };
            let _ = std::fs::remove_file(&args.socket);
            outcome
        }
    };

    let table = TableResult {
        model: ModelKind::FlNet,
        n_clients: fleet.len(),
        rows: vec![outcome],
    };
    println!("{}", render_table(&table));

    for mut child in children {
        let status = child.wait()?;
        if !status.success() {
            return Err(format!("a client process exited with {status}").into());
        }
    }
    Ok(())
}
