//! Determinism contract rule 8: buffered-async federated training on the
//! *seeded virtual clock* is a replay, not a race. One seed fixes the
//! whole arrival trace — stragglers, dropouts, rejoins, buffer fills —
//! so the staleness-weighted aggregates (and the rendered schedule
//! table) must be byte-identical across repeated runs, worker-thread
//! counts, and SIMD arms. Wall-clock async (`--async wall`) is the
//! documented opt-out and is exactly as unreproducible as it sounds.

use std::sync::Mutex;

use decentralized_routability::fed::{
    render_async_history, run_fedasync, AsyncConfig, AsyncRoundRecord, Client, ClientSet,
    FedConfig, LocalExecutor, MethodOutcome, ModelFactory, Parallelism,
};
use decentralized_routability::nn::models::{FlNet, FlNetConfig};
use decentralized_routability::tensor::rng::Xoshiro256;
use decentralized_routability::tensor::simd::{self, SimdBackend};
use decentralized_routability::tensor::Tensor;

/// Tests that mutate the process-global SIMD arm serialize on this lock
/// (same pattern as `tests/simd_determinism.rs`).
static GLOBAL_ARM: Mutex<()> = Mutex::new(());

/// A small heterogeneous client: labels keyed to channel 0 with a
/// per-client threshold shift.
fn synthetic_client(id: usize, n_train: usize, n_test: usize, seed: u64) -> Client {
    let threshold = 0.45 + 0.1 * (id as f32 % 3.0) / 3.0;
    let make = |n: usize, salt: u64| -> ClientSet {
        let mut rng = Xoshiro256::seed_from(seed ^ salt);
        let mut x = Tensor::from_fn(&[n, 2, 8, 8], |_| rng.uniform());
        let mut y = Tensor::zeros(&[n, 1, 8, 8]);
        for ni in 0..n {
            for i in 0..64 {
                let v = x.data()[ni * 128 + i];
                y.data_mut()[ni * 64 + i] = if v > threshold { 1.0 } else { 0.0 };
            }
            for i in 0..64 {
                x.data_mut()[ni * 128 + 64 + i] = rng.uniform();
            }
        }
        ClientSet::new(x, y).unwrap()
    };
    Client::new(id, make(n_train, 0xAAAA), make(n_test, 0xBBBB))
}

fn clients(n: usize) -> Vec<Client> {
    (0..n)
        .map(|k| synthetic_client(k + 1, 5, 3, 8600 + k as u64))
        .collect()
}

fn factory() -> ModelFactory {
    Box::new(|seed| {
        let mut rng = Xoshiro256::seed_from(seed);
        Box::new(FlNet::new(
            FlNetConfig {
                in_channels: 2,
                hidden: 4,
                kernel: 3,
                depth: 2,
            },
            &mut rng,
        ))
    })
}

fn fed_config(threads: usize) -> FedConfig {
    let mut config = FedConfig::tiny();
    config.local_steps = 2;
    config.batch_size = 2;
    config.seed = 8861;
    config.parallelism = Parallelism::new(threads);
    config
}

/// A schedule with everything the replay must pin: straggler spread
/// (latency up to 7 ticks), mid-training dropout, rejoins, and a buffer
/// smaller than the fleet so staleness actually accrues.
fn async_config(dropout: f64) -> AsyncConfig {
    let mut cfg = AsyncConfig::new(6, 2);
    cfg.max_latency = 7;
    cfg.dropout = dropout;
    cfg.rejoin_delay = 3;
    cfg.eval_every = 2;
    cfg.seed = 0xD15_7A7C;
    cfg
}

fn run_schedule(threads: usize, dropout: f64) -> (MethodOutcome, Vec<AsyncRoundRecord>, String) {
    let fleet = clients(4);
    let factory = factory();
    let config = fed_config(threads);
    let mut exec = LocalExecutor::new(&fleet, &factory, &config).unwrap();
    let (outcome, records) =
        run_fedasync(&fleet, &factory, &config, &async_config(dropout), &mut exec).unwrap();
    let rendered = render_async_history("replay", &records);
    (outcome, records, rendered)
}

/// `AsyncRoundRecord` carries a NaN sentinel in `average_auc` on
/// non-eval aggregations, so equality goes through `to_bits`.
fn assert_records_bitwise_equal(a: &[AsyncRoundRecord], b: &[AsyncRoundRecord], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: aggregation count");
    for (ra, rb) in a.iter().zip(b.iter()) {
        assert_eq!(ra.aggregation, rb.aggregation, "{what}: aggregation index");
        assert_eq!(ra.tick, rb.tick, "{what}: agg {} tick", ra.aggregation);
        assert_eq!(
            ra.arrivals, rb.arrivals,
            "{what}: agg {} arrival trace",
            ra.aggregation
        );
        assert_eq!(
            ra.average_auc.to_bits(),
            rb.average_auc.to_bits(),
            "{what}: agg {} AUC bits",
            ra.aggregation
        );
        assert_eq!(
            ra.mean_train_loss.to_bits(),
            rb.mean_train_loss.to_bits(),
            "{what}: agg {} loss bits",
            ra.aggregation
        );
    }
}

/// The seeded trace — with stragglers, dropout, and rejoins in play —
/// must replay byte-for-byte: same arrival order, same ticks, same
/// staleness-weighted aggregates, same rendered table, across repeated
/// runs and every thread count × SIMD arm cell.
#[test]
fn seeded_async_schedule_replays_bitwise_across_threads_and_simd() {
    let _guard = GLOBAL_ARM.lock().unwrap();
    let before = simd::global();

    simd::set_global(SimdBackend::Scalar);
    let (ref_outcome, ref_records, ref_rendered) = run_schedule(1, 0.25);
    assert_eq!(ref_records.len(), 6, "every aggregation must be recorded");
    assert!(
        ref_records
            .iter()
            .flat_map(|r| &r.arrivals)
            .any(|&(_, staleness)| staleness > 0),
        "the schedule must actually contain stale arrivals: {ref_rendered}"
    );

    for run in 0..2 {
        for threads in [1usize, 4] {
            for arm in [SimdBackend::Scalar, SimdBackend::detect()] {
                simd::set_global(arm);
                let what = format!("run {run} / {threads} threads / {arm} arm");
                let (outcome, records, rendered) = run_schedule(threads, 0.25);
                assert_eq!(outcome, ref_outcome, "{what}: outcome drifted");
                assert_records_bitwise_equal(&ref_records, &records, &what);
                assert_eq!(
                    ref_rendered, rendered,
                    "{what}: rendered schedule bytes drifted"
                );
            }
        }
    }
    simd::set_global(before);
}

/// Dropout must be doing real work in that pinned trace: the same seed
/// with dropout disabled yields a *different* arrival trace (the dropped
/// dispatches and delayed rejoins are observable), while staying just as
/// reproducible.
#[test]
fn dropout_changes_the_trace_but_not_its_reproducibility() {
    let _guard = GLOBAL_ARM.lock().unwrap();
    let before = simd::global();
    simd::set_global(SimdBackend::Scalar);

    let (_, with_dropout, _) = run_schedule(1, 0.25);
    let (_, without, _) = run_schedule(1, 0.0);
    let trace = |records: &[AsyncRoundRecord]| -> Vec<(u64, Vec<(usize, u64)>)> {
        records
            .iter()
            .map(|r| (r.tick, r.arrivals.clone()))
            .collect()
    };
    assert_ne!(
        trace(&with_dropout),
        trace(&without),
        "25% dropout must perturb the arrival schedule"
    );

    let (_, with_dropout_again, _) = run_schedule(1, 0.25);
    assert_records_bitwise_equal(&with_dropout, &with_dropout_again, "dropout replay");
    simd::set_global(before);
}
