//! Integration tests of the EDA substrate as a *learning problem*: the
//! generated features must be predictive of the generated labels, and the
//! families must be genuinely heterogeneous — the two properties the
//! paper's experiments rest on.

use decentralized_routability::eda::corpus::{generate_client, CorpusConfig, PAPER_CLIENTS};
use decentralized_routability::eda::dataset::generate_sample;
use decentralized_routability::eda::features::FEATURE_CHANNELS;
use decentralized_routability::eda::netlist::generate_netlist;
use decentralized_routability::eda::placement::PlacementConfig;
use decentralized_routability::eda::Family;
use decentralized_routability::metrics::roc_auc;

/// ROC AUC of a single raw feature channel against the labels — a
/// model-free measure of how learnable the task is.
fn channel_auc(family: Family, channel: usize, seeds: std::ops::Range<u64>) -> f64 {
    let mut scores = Vec::new();
    let mut labels = Vec::new();
    for seed in seeds {
        let nl = generate_netlist(family, seed).unwrap();
        let sample = generate_sample(&nl, &PlacementConfig::new(16, 16, seed ^ 0xC0)).unwrap();
        let hw = 16 * 16;
        scores.extend_from_slice(&sample.features.data()[channel * hw..(channel + 1) * hw]);
        labels.extend(sample.label.data().iter().map(|&v| v > 0.5));
    }
    roc_auc(&scores, &labels).unwrap()
}

#[test]
fn rudy_feature_is_predictive_of_drc_hotspots() {
    // Channel 3 is RUDY; on its own it should be a decent predictor —
    // well above chance but below perfect (the label also depends on the
    // L-routed demand, pins, macros and noise).
    for family in Family::ALL {
        let auc = channel_auc(family, 3, 0..6);
        assert!(
            auc > 0.62,
            "{family}: RUDY alone should beat chance, got {auc:.3}"
        );
        assert!(
            auc < 0.999,
            "{family}: labels must not be a trivial function of RUDY, got {auc:.3}"
        );
    }
}

#[test]
fn blockage_channel_alone_is_weak() {
    // The macro blockage mask should carry far less signal than RUDY.
    let rudy = channel_auc(Family::Ispd15, 3, 0..6);
    let blockage = channel_auc(Family::Ispd15, 2, 0..6);
    assert!(
        rudy > blockage,
        "RUDY ({rudy:.3}) should out-predict blockage ({blockage:.3})"
    );
}

#[test]
fn clients_of_one_family_are_more_similar_than_cross_family() {
    // Heterogeneity check at the dataset level: mean per-channel feature
    // vectors of two ITC'99 clients should be closer to each other than
    // to the ISPD'15 client.
    let config = CorpusConfig::tiny();
    let mean_features = |idx: usize| -> Vec<f64> {
        let client = generate_client(&PAPER_CLIENTS[idx], &config).unwrap();
        let mut sums = [0.0f64; FEATURE_CHANNELS];
        let mut count = 0usize;
        for s in client.train.samples() {
            let hw = 16 * 16;
            for c in 0..FEATURE_CHANNELS {
                sums[c] += s.features.data()[c * hw..(c + 1) * hw]
                    .iter()
                    .map(|&v| v as f64)
                    .sum::<f64>();
            }
            count += hw;
        }
        sums.iter().map(|s| s / count as f64).collect()
    };
    let dist = |a: &[f64], b: &[f64]| -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt()
    };
    let c1 = mean_features(0); // ITC'99
    let c2 = mean_features(1); // ITC'99
    let c9 = mean_features(8); // ISPD'15
    let intra = dist(&c1, &c2);
    let cross = dist(&c1, &c9);
    assert!(
        cross > intra,
        "cross-family distance {cross:.4} must exceed intra-family {intra:.4}"
    );
}

#[test]
fn feature_tensors_are_normalized_and_finite() {
    for family in Family::ALL {
        let nl = generate_netlist(family, 1).unwrap();
        let sample = generate_sample(&nl, &PlacementConfig::new(16, 16, 1)).unwrap();
        assert!(sample.features.is_finite());
        assert!(sample
            .features
            .data()
            .iter()
            .all(|&v| (0.0..1.0).contains(&v)));
        assert!(sample.label.data().iter().all(|&v| v == 0.0 || v == 1.0));
    }
}

#[test]
fn hotspot_rates_are_in_the_trainable_band_per_client() {
    // Every client's labels must have both classes at a workable ratio —
    // otherwise AUC is undefined and training is degenerate.
    let config = CorpusConfig::tiny();
    for spec in &PAPER_CLIENTS {
        let client = generate_client(spec, &config).unwrap();
        for (name, ds) in [("train", &client.train), ("test", &client.test)] {
            let rate = ds.hotspot_rate();
            assert!(
                (0.005..0.60).contains(&rate),
                "client {} {name}: hotspot rate {rate:.3}",
                spec.index
            );
        }
    }
}
