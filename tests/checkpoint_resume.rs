//! Checkpoint/resume guards: a coordinator killed mid-run and restarted
//! from its newest on-disk checkpoint must finish with **byte-identical**
//! output to the uninterrupted run — across thread counts and SIMD arms
//! (the checkpoint digest deliberately excludes parallelism), and
//! through the real binary (`--die-after` / `--resume`).

use std::sync::Mutex;

use decentralized_routability::fed::{
    config_digest, latest_checkpoint, local_links, read_checkpoint, run_rounds_resilient,
    write_checkpoint, Checkpoint, FaultPolicy, FedConfig, ModelFactory, Parallelism, ResumePoint,
};
use decentralized_routability::fed::{Client, ClientSet};
use decentralized_routability::net::RetryPolicy;
use decentralized_routability::nn::models::{FlNet, FlNetConfig};
use decentralized_routability::nn::StateDict;
use decentralized_routability::tensor::rng::Xoshiro256;
use decentralized_routability::tensor::simd::{self, SimdBackend};
use decentralized_routability::tensor::Tensor;

/// Tests that mutate the process-global SIMD arm serialize on this lock
/// (same pattern as `tests/transport_determinism.rs`).
static GLOBAL_ARM: Mutex<()> = Mutex::new(());

fn synthetic_client(id: usize, n_train: usize, n_test: usize, seed: u64) -> Client {
    let threshold = 0.45 + 0.1 * (id as f32 % 3.0) / 3.0;
    let make = |n: usize, salt: u64| -> ClientSet {
        let mut rng = Xoshiro256::seed_from(seed ^ salt);
        let mut x = Tensor::from_fn(&[n, 2, 8, 8], |_| rng.uniform());
        let mut y = Tensor::zeros(&[n, 1, 8, 8]);
        for ni in 0..n {
            for i in 0..64 {
                let v = x.data()[ni * 128 + i];
                y.data_mut()[ni * 64 + i] = if v > threshold { 1.0 } else { 0.0 };
            }
            for i in 0..64 {
                x.data_mut()[ni * 128 + 64 + i] = rng.uniform();
            }
        }
        ClientSet::new(x, y).unwrap()
    };
    Client::new(id, make(n_train, 0xAAAA), make(n_test, 0xBBBB))
}

fn clients(n: usize) -> Vec<Client> {
    (0..n)
        .map(|k| synthetic_client(k + 1, 5, 3, 9300 + k as u64))
        .collect()
}

fn factory() -> ModelFactory {
    Box::new(|seed| {
        let mut rng = Xoshiro256::seed_from(seed);
        Box::new(FlNet::new(
            FlNetConfig {
                in_channels: 2,
                hidden: 4,
                kernel: 3,
                depth: 2,
            },
            &mut rng,
        ))
    })
}

fn config(threads: usize) -> FedConfig {
    let mut config = FedConfig::tiny();
    config.rounds = 4;
    config.local_steps = 2;
    config.batch_size = 2;
    config.seed = 4207;
    config.parallelism = Parallelism::new(threads);
    config
}

fn policy() -> FaultPolicy {
    FaultPolicy {
        retry: RetryPolicy::immediate(2),
        min_quorum: 3,
        ..FaultPolicy::default()
    }
}

/// Runs the resilient loop, writing a checkpoint to `dir` after every
/// round; aborts the run (simulating the kill) right after `die_after`.
fn run_checkpointed(
    config: &FedConfig,
    dir: &std::path::Path,
    die_after: Option<usize>,
) -> Option<decentralized_routability::fed::ResilientOutcome> {
    let fleet = clients(3);
    let factory = factory();
    let digest = config_digest(config, &fleet);
    let mut links = local_links(&fleet, &factory, config, None).unwrap();
    let mut hook = |round: usize, seq: u64, state: &StateDict| {
        write_checkpoint(
            dir,
            &Checkpoint {
                round: round as u64,
                seq,
                digest,
                state: state.clone(),
            },
        )?;
        if Some(round) == die_after {
            // The test's stand-in for `kill -9`: stop driving rounds.
            return Err(decentralized_routability::fed::FedError::Checkpoint {
                reason: "killed by test".into(),
            });
        }
        Ok(())
    };
    run_rounds_resilient(
        &fleet,
        &factory,
        config,
        &mut links,
        &policy(),
        None,
        Some(&mut hook),
    )
    .ok()
}

/// Resumes from the newest checkpoint in `dir` and runs to completion.
fn resume_from_disk(
    config: &FedConfig,
    dir: &std::path::Path,
) -> decentralized_routability::fed::ResilientOutcome {
    let fleet = clients(3);
    let factory = factory();
    let digest = config_digest(config, &fleet);
    let path = latest_checkpoint(dir)
        .unwrap()
        .expect("a checkpoint exists");
    let ckpt = read_checkpoint(&path, Some(digest)).unwrap();
    let mut links = local_links(&fleet, &factory, config, None).unwrap();
    run_rounds_resilient(
        &fleet,
        &factory,
        config,
        &mut links,
        &policy(),
        Some(ResumePoint {
            round: ckpt.round as usize,
            seq: ckpt.seq,
            state: ckpt.state,
        }),
        None,
    )
    .unwrap()
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("rte-ckpt-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The full disk round trip: a run killed after round 2 whose successor
/// resumes from the newest checkpoint *file* finishes with the same
/// final-table bits as the uninterrupted run.
#[test]
fn killed_run_resumes_from_disk_bit_identically() {
    let _guard = GLOBAL_ARM.lock().unwrap();
    let before = simd::global();
    simd::set_global(SimdBackend::Scalar);

    let config = config(1);
    let full = run_checkpointed(&config, &temp_dir("full"), None).expect("uninterrupted run");

    let dir = temp_dir("killed");
    assert!(
        run_checkpointed(&config, &dir, Some(2)).is_none(),
        "the kill hook must abort the run"
    );
    // Only rounds 1 and 2 made it to disk.
    let newest = latest_checkpoint(&dir).unwrap().unwrap();
    assert!(newest.to_string_lossy().contains("0000000002"));

    let resumed = resume_from_disk(&config, &dir);
    assert_eq!(resumed.completed_rounds, config.rounds);
    for (a, b) in resumed
        .outcome
        .per_client
        .iter()
        .zip(full.outcome.per_client.iter())
    {
        assert_eq!(a.auc.to_bits(), b.auc.to_bits(), "resumed AUC bits drifted");
    }
    assert_eq!(
        resumed.outcome.average_auc.to_bits(),
        full.outcome.average_auc.to_bits()
    );
    simd::set_global(before);
}

/// The digest excludes parallelism by design: a checkpoint written at 1
/// thread on the scalar arm resumes at 4 threads on the detected arm —
/// and still lands on the same bits (rules 2 + 3 compose with resume).
#[test]
fn resume_crosses_thread_counts_and_simd_arms() {
    let _guard = GLOBAL_ARM.lock().unwrap();
    let before = simd::global();

    simd::set_global(SimdBackend::Scalar);
    let full = run_checkpointed(&config(1), &temp_dir("xfull"), None).expect("uninterrupted run");
    let dir = temp_dir("xkilled");
    assert!(run_checkpointed(&config(1), &dir, Some(2)).is_none());

    for threads in [1usize, 4] {
        for arm in [SimdBackend::Scalar, SimdBackend::detect()] {
            simd::set_global(arm);
            let resumed = resume_from_disk(&config(threads), &dir);
            assert_eq!(
                resumed.outcome.average_auc.to_bits(),
                full.outcome.average_auc.to_bits(),
                "resume drifted at {threads} threads / {arm} arm"
            );
        }
    }
    simd::set_global(before);
}

/// A checkpoint from a *different* experiment must not resume: the
/// config digest check turns the mismatch into a typed error.
#[test]
fn checkpoint_from_another_config_is_rejected() {
    let _guard = GLOBAL_ARM.lock().unwrap();
    let before = simd::global();
    simd::set_global(SimdBackend::Scalar);

    let dir = temp_dir("mismatch");
    assert!(run_checkpointed(&config(1), &dir, Some(2)).is_none());
    let path = latest_checkpoint(&dir).unwrap().unwrap();

    let mut other = config(1);
    other.seed ^= 1;
    let fleet = clients(3);
    let other_digest = config_digest(&other, &fleet);
    let err = read_checkpoint(&path, Some(other_digest)).unwrap_err();
    assert!(
        matches!(
            err,
            decentralized_routability::fed::CheckpointError::DigestMismatch { .. }
        ),
        "got {err:?}"
    );
    simd::set_global(before);
}

/// Release-gated end-to-end pin: the `rte-coordinator` binary killed by
/// `--die-after 2` (exit code 17) and restarted with `--resume` must
/// print byte-for-byte the table of an uninterrupted run. CI runs this
/// via `--release -- --include-ignored`.
#[test]
#[ignore = "release-only: three full coordinator runs (CI runs with --include-ignored)"]
fn killed_coordinator_binary_resumes_to_identical_table_bytes() {
    let base = [
        "--transport",
        "channel",
        "--clients",
        "3",
        "--quick",
        "--seed",
        "42",
        "--rounds",
        "4",
    ];
    let dir = temp_dir("binary");
    let run = |extra: &[&str]| {
        std::process::Command::new(env!("CARGO_BIN_EXE_rte-coordinator"))
            .args(base)
            .args(extra)
            .output()
            .unwrap()
    };

    let full = run(&[]);
    assert!(full.status.success());

    let dir_flag = dir.to_str().unwrap();
    let killed = run(&["--checkpoint-dir", dir_flag, "--die-after", "2"]);
    assert_eq!(
        killed.status.code(),
        Some(17),
        "die-after must exit with its own code: {}",
        String::from_utf8_lossy(&killed.stderr)
    );
    assert!(
        killed.stdout.is_empty(),
        "a killed run must not print a table"
    );

    let resumed = run(&["--checkpoint-dir", dir_flag, "--resume"]);
    assert!(
        resumed.status.success(),
        "resume failed: {}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    assert_eq!(
        String::from_utf8(resumed.stdout).unwrap(),
        String::from_utf8(full.stdout).unwrap(),
        "resumed table must be byte-identical to the uninterrupted run"
    );
    assert!(
        String::from_utf8_lossy(&resumed.stderr).contains("resume: round 2"),
        "the resumed run must report where it picked up"
    );
}
