//! Regression tests on the *shape* of the paper's headline result for
//! FLNet: collaboration must beat isolated local training on the
//! heterogeneous Table 2 corpus.
//!
//! These run a real (small) federated experiment, so they are ignored in
//! debug builds; run them with `cargo test --release -- --include-ignored`
//! or rely on the default `cargo test --release`.

use decentralized_routability::core::{build_clients, run_method_on_clients, ExperimentConfig};
use decentralized_routability::eda::corpus::generate_corpus;
use decentralized_routability::fed::Method;
use decentralized_routability::nn::models::ModelKind;

fn shape_config() -> ExperimentConfig {
    let mut config = ExperimentConfig::scaled();
    config.corpus.placement_scale = 0.03;
    config.fed.rounds = 5;
    config.fed.local_steps = 10;
    config.fed.finetune_steps = 60;
    config
}

#[test]
#[cfg_attr(debug_assertions, ignore = "runs a real experiment; release only")]
fn collaboration_beats_local_training_for_flnet() {
    let config = shape_config();
    let corpus = generate_corpus(&config.corpus).expect("corpus");
    let clients = build_clients(&corpus).expect("clients");
    let local = run_method_on_clients(Method::LocalOnly, &clients, ModelKind::FlNet, &config)
        .expect("local");
    let fedprox = run_method_on_clients(Method::FedProx, &clients, ModelKind::FlNet, &config)
        .expect("fedprox");
    assert!(
        fedprox.average_auc > local.average_auc,
        "paper shape violated: FedProx {:.3} !> local {:.3}",
        fedprox.average_auc,
        local.average_auc
    );
    // Both must be in the meaningful band: far above chance, below the
    // noise ceiling.
    for (name, outcome) in [("local", &local), ("fedprox", &fedprox)] {
        assert!(
            (0.6..0.99).contains(&outcome.average_auc),
            "{name}: average AUC {:.3} outside plausible band",
            outcome.average_auc
        );
    }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "runs a real experiment; release only")]
fn task_is_not_saturated() {
    // Guard against the failure mode where the synthetic task becomes so
    // easy that every method lands at the label-noise ceiling and the
    // experiments cannot differentiate anything: per-client AUCs of a
    // briefly trained local model must show real spread.
    let config = shape_config();
    let corpus = generate_corpus(&config.corpus).expect("corpus");
    let clients = build_clients(&corpus).expect("clients");
    let local = run_method_on_clients(Method::LocalOnly, &clients, ModelKind::FlNet, &config)
        .expect("local");
    let min = local
        .per_client_auc
        .iter()
        .cloned()
        .fold(f64::INFINITY, f64::min);
    let max = local
        .per_client_auc
        .iter()
        .cloned()
        .fold(f64::NEG_INFINITY, f64::max);
    assert!(
        max - min > 0.03,
        "per-client spread {:.3} too small — task saturated? {:?}",
        max - min,
        local.per_client_auc
    );
}
