//! Reproducibility guard: the whole corpus → clients → training →
//! evaluation pipeline is seeded through `Xoshiro256` stream derivation,
//! so two runs of the same experiment must agree *bit for bit* — not just
//! approximately. This is the contract every paper-table binary and every
//! regression test in the workspace leans on.

use decentralized_routability::core::{build_clients, run_method_on_clients, ExperimentConfig};
use decentralized_routability::eda::corpus::generate_corpus;
use decentralized_routability::fed::{Method, MethodOutcome, Parallelism};
use decentralized_routability::nn::models::ModelKind;

/// The smallest experiment that still exercises data generation, local
/// training and AUC evaluation for all 9 Table 2 clients.
fn minimal_config() -> ExperimentConfig {
    let mut config = ExperimentConfig::tiny();
    config.fed.rounds = 1;
    config.fed.local_steps = 1;
    config.fed.finetune_steps = 1;
    config
}

fn run_local_only(config: &ExperimentConfig) -> MethodOutcome {
    let corpus = generate_corpus(&config.corpus).expect("corpus");
    let clients = build_clients(&corpus).expect("clients");
    run_method_on_clients(Method::LocalOnly, &clients, ModelKind::FlNet, config)
        .expect("local-only run")
}

#[test]
fn same_seed_gives_bit_identical_auc() {
    let config = minimal_config();
    let a = run_local_only(&config);
    let b = run_local_only(&config);
    assert_eq!(
        a.average_auc.to_bits(),
        b.average_auc.to_bits(),
        "average AUC drifted between identical runs: {} vs {}",
        a.average_auc,
        b.average_auc
    );
    assert_eq!(a.per_client_auc.len(), b.per_client_auc.len());
    for (k, (x, y)) in a
        .per_client_auc
        .iter()
        .zip(b.per_client_auc.iter())
        .enumerate()
    {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "client {k} AUC drifted between identical runs: {x} vs {y}"
        );
    }
}

/// The parallel round loop must not change a single bit: training a
/// round's clients on 1 vs 4 worker threads is the same computation in a
/// different schedule, because every client works on private state and
/// aggregation happens on the coordinator in fixed client order.
#[test]
fn thread_count_does_not_change_results() {
    let mut config = minimal_config();
    config.fed.rounds = 2; // ≥ 2 rounds so re-deployment is covered
    let corpus = generate_corpus(&config.corpus).expect("corpus");
    let clients = build_clients(&corpus).expect("clients");
    let mut run_with = |threads: usize, method: Method| -> MethodOutcome {
        config.fed.parallelism = Parallelism::new(threads);
        run_method_on_clients(method, &clients, ModelKind::FlNet, &config).expect("run")
    };
    for method in [Method::FedProx, Method::LocalOnly] {
        let serial = run_with(1, method);
        let parallel = run_with(4, method);
        assert_eq!(
            serial.average_auc.to_bits(),
            parallel.average_auc.to_bits(),
            "{method}: average AUC drifted across thread counts: {} vs {}",
            serial.average_auc,
            parallel.average_auc
        );
        for (k, (a, b)) in serial
            .per_client_auc
            .iter()
            .zip(parallel.per_client_auc.iter())
            .enumerate()
        {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{method}: client {k} AUC drifted across thread counts: {a} vs {b}"
            );
        }
    }
}

#[test]
fn corpus_generation_is_bit_identical() {
    // The data half of the pipeline alone: identical seeds must produce
    // identical feature/label tensors, client by client.
    let config = minimal_config();
    let a = generate_corpus(&config.corpus).expect("corpus a");
    let b = generate_corpus(&config.corpus).expect("corpus b");
    assert_eq!(a.clients.len(), b.clients.len());
    for (ca, cb) in a.clients.iter().zip(b.clients.iter()) {
        let (xa, ya) = ca.train.full_batch().expect("batch a");
        let (xb, yb) = cb.train.full_batch().expect("batch b");
        assert_eq!(xa, xb, "client {} train features drifted", ca.spec.index);
        assert_eq!(ya, yb, "client {} train labels drifted", ca.spec.index);
    }
}
