//! Property-based tests (proptest) on the workspace's core invariants:
//! tensor algebra, convolution geometry, aggregation convexity and ROC
//! AUC semantics.

use proptest::prelude::*;

use decentralized_routability::fed::params::{blend, l2_distance_sq, weighted_average};
use decentralized_routability::metrics::roc_auc;
use decentralized_routability::nn::StateDict;
use decentralized_routability::tensor::conv::{conv2d, Conv2dSpec};
use decentralized_routability::tensor::rng::Xoshiro256;
use decentralized_routability::tensor::Tensor;

fn tensor_strategy(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-10.0f32..10.0, len)
}

fn dict_from(values: &[f32]) -> StateDict {
    vec![(
        "w".to_string(),
        Tensor::from_vec(values.to_vec(), &[values.len()]).unwrap(),
    )]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Aggregation is convex: every coordinate of the average lies within
    /// the [min, max] envelope of the inputs.
    #[test]
    fn weighted_average_is_convex(
        a in tensor_strategy(16),
        b in tensor_strategy(16),
        c in tensor_strategy(16),
        wa in 0.1f64..10.0,
        wb in 0.1f64..10.0,
        wc in 0.1f64..10.0,
    ) {
        let (da, db, dc) = (dict_from(&a), dict_from(&b), dict_from(&c));
        let avg = weighted_average(&[(&da, wa), (&db, wb), (&dc, wc)]).unwrap();
        for i in 0..16 {
            let lo = a[i].min(b[i]).min(c[i]);
            let hi = a[i].max(b[i]).max(c[i]);
            let v = avg[0].1.data()[i];
            prop_assert!(v >= lo - 1e-4 && v <= hi + 1e-4, "coord {i}: {v} outside [{lo}, {hi}]");
        }
    }

    /// Averaging identical dicts is the identity regardless of weights.
    #[test]
    fn weighted_average_identity(
        a in tensor_strategy(8),
        w1 in 0.1f64..5.0,
        w2 in 0.1f64..5.0,
    ) {
        let d = dict_from(&a);
        let avg = weighted_average(&[(&d, w1), (&d, w2)]).unwrap();
        for i in 0..8 {
            prop_assert!((avg[0].1.data()[i] - a[i]).abs() < 1e-4);
        }
    }

    /// Blend endpoints: α=1 returns the first dict, α=0 the second, and
    /// the L2 distance to either endpoint is monotone in α.
    #[test]
    fn blend_endpoints_and_monotonicity(
        a in tensor_strategy(8),
        b in tensor_strategy(8),
    ) {
        let (da, db) = (dict_from(&a), dict_from(&b));
        prop_assert_eq!(blend(&da, &db, 1.0).unwrap(), da.clone());
        prop_assert_eq!(blend(&da, &db, 0.0).unwrap(), db.clone());
        let quarter = blend(&da, &db, 0.25).unwrap();
        let half = blend(&da, &db, 0.5).unwrap();
        let d_q = l2_distance_sq(&quarter, &da).unwrap();
        let d_h = l2_distance_sq(&half, &da).unwrap();
        prop_assert!(d_h <= d_q + 1e-6, "closer to a as alpha grows: {d_h} vs {d_q}");
    }

    /// ROC AUC is invariant under adding a constant to all scores and is
    /// complemented by label inversion: AUC(s, y) + AUC(s, ¬y) == 1.
    #[test]
    fn roc_auc_shift_invariance_and_complement(
        scores in proptest::collection::vec(0.0f32..1.0, 12),
        labels in proptest::collection::vec(any::<bool>(), 12),
        shift in -5.0f32..5.0,
    ) {
        let positives = labels.iter().filter(|&&l| l).count();
        prop_assume!(positives > 0 && positives < labels.len());
        let auc = roc_auc(&scores, &labels).unwrap();
        let shifted: Vec<f32> = scores.iter().map(|&s| s + shift).collect();
        let auc_shifted = roc_auc(&shifted, &labels).unwrap();
        prop_assert!((auc - auc_shifted).abs() < 1e-9);
        let inverted: Vec<bool> = labels.iter().map(|&l| !l).collect();
        let auc_inv = roc_auc(&scores, &inverted).unwrap();
        prop_assert!((auc + auc_inv - 1.0).abs() < 1e-9, "{auc} + {auc_inv}");
    }

    /// Convolution is linear in the input: conv(x1 + x2) == conv(x1) +
    /// conv(x2) for bias-free kernels.
    #[test]
    fn conv2d_is_linear(
        seed in 0u64..1000,
    ) {
        let mut rng = Xoshiro256::seed_from(seed);
        let x1 = Tensor::from_fn(&[1, 2, 6, 6], |_| rng.normal());
        let x2 = Tensor::from_fn(&[1, 2, 6, 6], |_| rng.normal());
        let w = Tensor::from_fn(&[3, 2, 3, 3], |_| rng.normal());
        let spec = Conv2dSpec::same(3);
        let y_sum = conv2d(&x1.add(&x2).unwrap(), &w, None, spec).unwrap();
        let y1 = conv2d(&x1, &w, None, spec).unwrap();
        let y2 = conv2d(&x2, &w, None, spec).unwrap();
        let expected = y1.add(&y2).unwrap();
        for (a, b) in y_sum.data().iter().zip(expected.data().iter()) {
            prop_assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    /// Conv output geometry matches the closed-form extent for arbitrary
    /// strides/paddings/dilations that admit at least one output site.
    #[test]
    fn conv2d_geometry(
        h in 6usize..20,
        w in 6usize..20,
        k in 1usize..4,
        stride in 1usize..3,
        padding in 0usize..3,
        dilation in 1usize..3,
    ) {
        let spec = Conv2dSpec { stride, padding, dilation };
        let eff = spec.effective_kernel(k);
        prop_assume!(h + 2 * padding >= eff && w + 2 * padding >= eff);
        let x = Tensor::zeros(&[1, 1, h, w]);
        let kw = Tensor::zeros(&[1, 1, k, k]);
        let y = conv2d(&x, &kw, None, spec).unwrap();
        prop_assert_eq!(y.dim(2), (h + 2 * padding - eff) / stride + 1);
        prop_assert_eq!(y.dim(3), (w + 2 * padding - eff) / stride + 1);
    }

    /// Tensor algebra: (a + b) - b == a elementwise (exact for these
    /// magnitudes), and scale distributes over add.
    #[test]
    fn tensor_add_sub_roundtrip(
        a in tensor_strategy(24),
        b in tensor_strategy(24),
        alpha in -3.0f32..3.0,
    ) {
        let ta = Tensor::from_vec(a.clone(), &[24]).unwrap();
        let tb = Tensor::from_vec(b, &[24]).unwrap();
        let roundtrip = ta.add(&tb).unwrap().sub(&tb).unwrap();
        for (x, y) in roundtrip.data().iter().zip(a.iter()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
        let lhs = ta.add(&tb).unwrap().scale(alpha);
        let rhs = ta.scale(alpha).add(&tb.scale(alpha)).unwrap();
        for (x, y) in lhs.data().iter().zip(rhs.data().iter()) {
            prop_assert!((x - y).abs() < 1e-2);
        }
    }
}

/// Naive per-coordinate reference for the robust reductions: collect
/// the K values of one coordinate, sorted ascending (all inputs here
/// are NaN-free, so the order is total).
fn sorted_coordinate(dicts: &[Vec<f32>], i: usize) -> Vec<f32> {
    let mut column: Vec<f32> = dicts.iter().map(|d| d[i]).collect();
    column.sort_by(|a, b| a.partial_cmp(b).unwrap());
    column
}

/// Builds `n` dicts of `len` coordinates from a flat pool of coarse
/// grid values (step 0.5), so ties between clients are common rather
/// than measure-zero — the interesting regime for order statistics.
fn tied_dicts(n: usize, len: usize, pool: &[i32]) -> Vec<Vec<f32>> {
    (0..n)
        .map(|d| (0..len).map(|i| pool[d * len + i] as f32 * 0.5).collect())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `coordinate_median` agrees bitwise with the textbook definition
    /// — middle element for odd K, midpoint of the two middles for even
    /// K — including heavy ties, for 2..=7 clients.
    #[test]
    fn coordinate_median_matches_naive_reference(
        n in 2usize..8,
        pool in proptest::collection::vec(-6i32..7, 7 * 12),
    ) {
        use decentralized_routability::fed::params::coordinate_median;
        let dicts = tied_dicts(n, 12, &pool);
        let owned: Vec<StateDict> = dicts.iter().map(|d| dict_from(d)).collect();
        let refs: Vec<&StateDict> = owned.iter().collect();
        let median = coordinate_median(&refs).unwrap();
        let n = dicts.len();
        for i in 0..12 {
            let sorted = sorted_coordinate(&dicts, i);
            let expected = if n % 2 == 1 {
                sorted[n / 2]
            } else {
                (sorted[n / 2 - 1] + sorted[n / 2]) * 0.5
            };
            let got = median[0].1.data()[i];
            prop_assert!(got.to_bits() == expected.to_bits(), "coord {}: {} vs {}", i, got, expected);
        }
    }

    /// `trimmed_mean` agrees bitwise with the naive reference: sort,
    /// drop `⌊ratio·K⌋` from each end (clamped so one value survives),
    /// average the rest in ascending order.
    #[test]
    fn trimmed_mean_matches_naive_reference(
        n in 1usize..9,
        pool in proptest::collection::vec(-6i32..7, 8 * 12),
        ratio in 0.0f32..0.5,
    ) {
        use decentralized_routability::fed::params::trimmed_mean;
        let dicts = tied_dicts(n, 12, &pool);
        let owned: Vec<StateDict> = dicts.iter().map(|d| dict_from(d)).collect();
        let refs: Vec<&StateDict> = owned.iter().collect();
        let trimmed = trimmed_mean(&refs, ratio).unwrap();
        let n = dicts.len();
        let trim = ((ratio as f64 * n as f64).floor() as usize).min(n.saturating_sub(1) / 2);
        for i in 0..12 {
            let sorted = sorted_coordinate(&dicts, i);
            let kept = &sorted[trim..n - trim];
            let mut acc = 0.0f32;
            for &v in kept {
                acc += v;
            }
            let expected = acc / kept.len() as f32;
            let got = trimmed[0].1.data()[i];
            prop_assert!(got.to_bits() == expected.to_bits(), "coord {}: {} vs {}", i, got, expected);
        }
    }

    /// The robustness guarantee the scenario harness leans on: when the
    /// hostile minority poisons its updates with NaN, the median is
    /// NaN-free as long as `2·hostile < K`, and the trimmed mean as long
    /// as `hostile ≤ ⌊ratio·K⌋` (NaN sorts last, so it is trimmed
    /// first). Honest values stay inside the honest envelope.
    #[test]
    fn robust_rules_shed_nan_minorities(
        n_honest in 3usize..8,
        pool in proptest::collection::vec(-6i32..7, 7 * 8),
        hostile in 1usize..3,
    ) {
        use decentralized_routability::fed::params::{coordinate_median, trimmed_mean};
        let honest = tied_dicts(n_honest, 8, &pool);
        prop_assume!(2 * hostile < honest.len() + hostile);
        let mut owned: Vec<StateDict> = honest.iter().map(|d| dict_from(d)).collect();
        for _ in 0..hostile {
            owned.push(dict_from(&[f32::NAN; 8]));
        }
        let refs: Vec<&StateDict> = owned.iter().collect();
        let n = refs.len();

        let median = coordinate_median(&refs).unwrap();
        for i in 0..8 {
            let v = median[0].1.data()[i];
            prop_assert!(v.is_finite(), "median coord {} is {}", i, v);
            let sorted = sorted_coordinate(&honest, i);
            prop_assert!(v >= sorted[0] && v <= sorted[honest.len() - 1]);
        }

        // Pick the smallest ratio that trims off every hostile dict.
        let ratio = (hostile as f32 + 0.5) / n as f32;
        prop_assume!(ratio < 0.5);
        let trimmed = trimmed_mean(&refs, ratio).unwrap();
        for i in 0..8 {
            let v = trimmed[0].1.data()[i];
            prop_assert!(v.is_finite(), "trimmed coord {} is {}", i, v);
        }
    }
}
