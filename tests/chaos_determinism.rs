//! Determinism contract rule 9 guards: a federated run under seeded
//! fault injection must replay **bit for bit** — the same `--chaos-seed`
//! produces the same drops, the same retries, the same survivor sets,
//! and therefore the same aggregated bits — at every `RTE_THREADS` ×
//! `RTE_SIMD` cell. Plus the satellite regressions: injected corruption
//! is always caught by the frame CRCs as *typed* errors, and a client
//! that goes silent mid-run can delay a round by at most its deadline ×
//! retry budget — never wedge the coordinator.

use std::sync::Mutex;

use decentralized_routability::fed::{
    local_links, run_rounds_resilient, Client, ClientSession, ClientSet, FaultPolicy, FedConfig,
    ModelFactory, Parallelism, ResilientOutcome, RoundEvent,
};
use decentralized_routability::net::{
    ChaosConfig, ChaosTransport, RetryPolicy, Transport, UdsListener, UdsTransport,
};
use decentralized_routability::nn::models::{FlNet, FlNetConfig};
use decentralized_routability::tensor::rng::Xoshiro256;
use decentralized_routability::tensor::simd::{self, SimdBackend};
use decentralized_routability::tensor::Tensor;

/// Tests that mutate the process-global SIMD arm serialize on this lock
/// (same pattern as `tests/transport_determinism.rs`).
static GLOBAL_ARM: Mutex<()> = Mutex::new(());

fn synthetic_client(id: usize, n_train: usize, n_test: usize, seed: u64) -> Client {
    let threshold = 0.45 + 0.1 * (id as f32 % 3.0) / 3.0;
    let make = |n: usize, salt: u64| -> ClientSet {
        let mut rng = Xoshiro256::seed_from(seed ^ salt);
        let mut x = Tensor::from_fn(&[n, 2, 8, 8], |_| rng.uniform());
        let mut y = Tensor::zeros(&[n, 1, 8, 8]);
        for ni in 0..n {
            for i in 0..64 {
                let v = x.data()[ni * 128 + i];
                y.data_mut()[ni * 64 + i] = if v > threshold { 1.0 } else { 0.0 };
            }
            for i in 0..64 {
                x.data_mut()[ni * 128 + 64 + i] = rng.uniform();
            }
        }
        ClientSet::new(x, y).unwrap()
    };
    Client::new(id, make(n_train, 0xAAAA), make(n_test, 0xBBBB))
}

fn clients(n: usize) -> Vec<Client> {
    (0..n)
        .map(|k| synthetic_client(k + 1, 5, 3, 9300 + k as u64))
        .collect()
}

fn factory() -> ModelFactory {
    Box::new(|seed| {
        let mut rng = Xoshiro256::seed_from(seed);
        Box::new(FlNet::new(
            FlNetConfig {
                in_channels: 2,
                hidden: 4,
                kernel: 3,
                depth: 2,
            },
            &mut rng,
        ))
    })
}

fn config(threads: usize) -> FedConfig {
    let mut config = FedConfig::tiny();
    config.rounds = 3;
    config.local_steps = 2;
    config.batch_size = 2;
    config.seed = 4207;
    config.parallelism = Parallelism::new(threads);
    config
}

/// The shared chaos palette: every fault class armed at rates that fire
/// several times in a 3-round run without starving a quorum of 1.
fn palette(seed: u64) -> ChaosConfig {
    ChaosConfig {
        seed,
        drop_p: 0.25,
        dup_p: 0.1,
        reorder_p: 0.15,
        reorder_window: 2,
        corrupt_p: 0.1,
        latency_min: 1,
        latency_max: 5,
    }
}

fn run_chaos(config: &FedConfig, chaos: &ChaosConfig, policy: &FaultPolicy) -> ResilientOutcome {
    let fleet = clients(3);
    let factory = factory();
    let mut links: Vec<ChaosTransport<_>> = local_links(&fleet, &factory, config, None)
        .unwrap()
        .into_iter()
        .enumerate()
        .map(|(lane, link)| ChaosTransport::new(link, chaos.clone(), lane as u64).unwrap())
        .collect();
    run_rounds_resilient(&fleet, &factory, config, &mut links, policy, None, None).unwrap()
}

/// Rule 9 core: the whole faulty run — outcome bits, event log, retry
/// counts — is a pure function of `(config seed, chaos seed)`,
/// independent of thread count and SIMD arm.
#[test]
fn chaos_schedule_replays_bitwise_across_threads_and_simd() {
    let _guard = GLOBAL_ARM.lock().unwrap();
    let before = simd::global();
    let policy = FaultPolicy {
        retry: RetryPolicy::immediate(4),
        min_quorum: 1,
        ..FaultPolicy::default()
    };

    simd::set_global(SimdBackend::Scalar);
    let reference = run_chaos(&config(1), &palette(0xC0FFEE), &policy);
    assert!(
        reference.retries > 0 || !reference.events.is_empty(),
        "the palette never fired — raise the rates"
    );

    for threads in [1usize, 4] {
        for arm in [SimdBackend::Scalar, SimdBackend::detect()] {
            simd::set_global(arm);
            let cell = run_chaos(&config(threads), &palette(0xC0FFEE), &policy);
            assert_eq!(
                cell, reference,
                "chaos run drifted at {threads} threads / {arm} arm"
            );
            for (a, b) in cell
                .outcome
                .per_client
                .iter()
                .zip(reference.outcome.per_client.iter())
            {
                assert_eq!(a.auc.to_bits(), b.auc.to_bits(), "AUC bits drifted");
            }
        }
    }
    simd::set_global(before);
}

/// A different chaos seed must change the fault schedule (the palette
/// is seeded, not vestigial), while the *training* problem stays fixed.
#[test]
fn chaos_seed_selects_the_fault_schedule() {
    let _guard = GLOBAL_ARM.lock().unwrap();
    let before = simd::global();
    simd::set_global(SimdBackend::Scalar);
    let policy = FaultPolicy {
        retry: RetryPolicy::immediate(4),
        min_quorum: 1,
        ..FaultPolicy::default()
    };
    let a = run_chaos(&config(1), &palette(1), &policy);
    let b = run_chaos(&config(1), &palette(2), &policy);
    assert_ne!(
        (&a.events, a.retries),
        (&b.events, b.retries),
        "different chaos seeds must give different fault schedules"
    );
    simd::set_global(before);
}

/// Injected byte corruption is always caught by the frame CRCs and
/// surfaces as a typed retry reason — never as silently wrong bits
/// reaching the aggregator.
#[test]
fn corruption_is_always_caught_by_frame_crcs() {
    let _guard = GLOBAL_ARM.lock().unwrap();
    let before = simd::global();
    simd::set_global(SimdBackend::Scalar);
    let chaos = ChaosConfig {
        seed: 33,
        corrupt_p: 0.5,
        ..ChaosConfig::default()
    };
    let policy = FaultPolicy {
        retry: RetryPolicy::immediate(6),
        min_quorum: 1,
        ..FaultPolicy::default()
    };
    let run = run_chaos(&config(1), &chaos, &policy);
    let crc_retries: Vec<&RoundEvent> = run
        .events
        .iter()
        .filter(|e| matches!(e, RoundEvent::Retry { reason, .. } if reason.contains("checksum")))
        .collect();
    assert!(
        !crc_retries.is_empty(),
        "a 50% corruption rate produced no CRC-typed retries: {:?}",
        run.events
    );
    simd::set_global(before);
}

/// Quorum degradation is deterministic: with one link deterministically
/// dead, two runs agree on the survivor set, the reweighted aggregate
/// bits, and the full miss log.
#[test]
fn quorum_reweighting_replays_bitwise() {
    let _guard = GLOBAL_ARM.lock().unwrap();
    let before = simd::global();
    simd::set_global(SimdBackend::Scalar);
    let policy = FaultPolicy {
        retry: RetryPolicy::immediate(2),
        min_quorum: 2,
        ..FaultPolicy::default()
    };
    let run = |_tag: &str| {
        let fleet = clients(3);
        let factory = factory();
        let config = config(1);
        let lethal = ChaosConfig {
            seed: 5,
            drop_p: 1.0,
            ..ChaosConfig::default()
        };
        let mut links: Vec<ChaosTransport<_>> = local_links(&fleet, &factory, &config, None)
            .unwrap()
            .into_iter()
            .enumerate()
            .map(|(lane, link)| {
                let cfg = if lane == 1 {
                    lethal.clone()
                } else {
                    ChaosConfig::default()
                };
                ChaosTransport::new(link, cfg, lane as u64).unwrap()
            })
            .collect();
        run_rounds_resilient(&fleet, &factory, &config, &mut links, &policy, None, None).unwrap()
    };
    let a = run("a");
    let b = run("b");
    assert_eq!(a, b, "degraded runs must replay bitwise");
    let missed = a
        .events
        .iter()
        .filter(|e| matches!(e, RoundEvent::Missed { client: 1, .. }))
        .count();
    assert_eq!(missed, config(1).rounds, "client 1 missed every round");
    simd::set_global(before);
}

/// Satellite regression: a client that connects, says hello, and then
/// never answers a deploy must cost the coordinator at most `deadline ×
/// attempts` per round — the run completes with the silent client
/// recorded as missed, instead of wedging in a blocking read forever.
#[test]
fn silent_client_over_uds_cannot_wedge_the_coordinator() {
    let _guard = GLOBAL_ARM.lock().unwrap();
    let before = simd::global();
    simd::set_global(SimdBackend::Scalar);

    let path = std::env::temp_dir().join(format!("rte-silent-{}.sock", std::process::id()));
    let listener = UdsListener::bind(&path).unwrap();
    let fleet = clients(3);
    let config = config(1);

    // Clients 0 and 1 serve normally on their own threads; client 2
    // hellos and then reads without ever replying (the silent peer).
    let mut servers = Vec::new();
    for me in 0..2usize {
        let path = path.clone();
        let config = config.clone();
        servers.push(std::thread::spawn(move || {
            let fleet = clients(3);
            let factory = factory();
            let mut session = ClientSession::new(&fleet, me, &factory, &config, None).unwrap();
            let mut transport = UdsTransport::connect(&path).unwrap();
            session.hello(&mut transport).unwrap();
            session.serve(&mut transport).unwrap();
        }));
    }
    {
        let path = path.clone();
        let config = config.clone();
        servers.push(std::thread::spawn(move || {
            let fleet = clients(3);
            let factory = factory();
            let mut session = ClientSession::new(&fleet, 2, &factory, &config, None).unwrap();
            let mut transport = UdsTransport::connect(&path).unwrap();
            session.hello(&mut transport).unwrap();
            // Swallow every deploy without answering until the
            // coordinator hangs up.
            while transport.recv().is_ok() {}
        }));
    }

    let mut slots: Vec<Option<UdsTransport>> = (0..3).map(|_| None).collect();
    for _ in 0..3 {
        let mut link = listener.accept().unwrap();
        let (_, message) = decentralized_routability::fed::wire::recv_message(&mut link).unwrap();
        let decentralized_routability::fed::wire::Message::Hello { client, .. } = message else {
            panic!("client did not open with a hello");
        };
        assert!(slots[client as usize].replace(link).is_none());
    }
    let mut links: Vec<UdsTransport> = slots.into_iter().map(Option::unwrap).collect();

    let factory = factory();
    let policy = FaultPolicy {
        deadline: std::time::Duration::from_millis(100),
        retry: RetryPolicy::immediate(2),
        min_quorum: 2,
    };
    let run =
        run_rounds_resilient(&fleet, &factory, &config, &mut links, &policy, None, None).unwrap();
    assert_eq!(run.completed_rounds, config.rounds);
    let missed = run
        .events
        .iter()
        .filter(|e| matches!(e, RoundEvent::Missed { client: 2, .. }))
        .count();
    assert_eq!(
        missed, config.rounds,
        "the silent client missed every round"
    );

    drop(links);
    for server in servers {
        server.join().unwrap();
    }
    let _ = std::fs::remove_file(&path);
    simd::set_global(before);
}
