//! Cross-crate integration tests: the full corpus → clients → federated
//! training → evaluation pipeline at miniature scale.

use decentralized_routability::core::{
    build_clients, run_method_on_clients, run_table, ExperimentConfig,
};
use decentralized_routability::eda::corpus::{generate_corpus, CorpusConfig};
use decentralized_routability::fed::Method;
use decentralized_routability::nn::models::ModelKind;

fn fast_config() -> ExperimentConfig {
    let mut config = ExperimentConfig::tiny();
    config.fed.rounds = 2;
    config.fed.local_steps = 4;
    config.fed.finetune_steps = 6;
    config
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "sweeps all 8 methods (~2 min unoptimized); release only"
)]
fn full_pipeline_runs_for_every_method() {
    let config = fast_config();
    let corpus = generate_corpus(&config.corpus).expect("corpus");
    let clients = build_clients(&corpus).expect("clients");
    assert_eq!(clients.len(), 9);
    for method in Method::ALL {
        let outcome = run_method_on_clients(method, &clients, ModelKind::FlNet, &config)
            .unwrap_or_else(|e| panic!("{method}: {e}"));
        assert_eq!(outcome.per_client_auc.len(), 9, "{method}");
        for (k, auc) in outcome.per_client_auc.iter().enumerate() {
            assert!(
                auc.is_finite() && (0.0..=1.0).contains(auc),
                "{method} client {k}: AUC {auc}"
            );
        }
    }
}

#[test]
fn pipeline_is_bit_reproducible() {
    let config = fast_config();
    let run = || {
        let corpus = generate_corpus(&config.corpus).unwrap();
        let clients = build_clients(&corpus).unwrap();
        run_method_on_clients(Method::FedProx, &clients, ModelKind::FlNet, &config)
            .unwrap()
            .per_client_auc
    };
    assert_eq!(run(), run());
}

#[test]
fn different_seeds_give_different_results() {
    let mut a = fast_config();
    let mut b = fast_config();
    b.corpus.seed ^= 0xFFFF;
    let run = |config: &ExperimentConfig| {
        let corpus = generate_corpus(&config.corpus).unwrap();
        let clients = build_clients(&corpus).unwrap();
        run_method_on_clients(Method::FedProx, &clients, ModelKind::FlNet, config)
            .unwrap()
            .per_client_auc
    };
    assert_ne!(run(&mut a), run(&mut b));
}

#[test]
fn run_table_renders_every_requested_row() {
    let mut config = fast_config();
    config.methods = vec![Method::LocalOnly, Method::FedProx];
    let table = run_table(ModelKind::FlNet, &config).expect("table");
    let text = decentralized_routability::core::report::render_table(&table);
    assert!(text.contains("FLNet"));
    assert!(text.contains("Local Average"));
    assert!(text.contains("FedProx"));
    assert!(text.contains("C9"));
}

#[test]
fn all_three_models_train_on_real_features() {
    // One round of FedProx for each zoo model over the generated corpus
    // exercises conv, trans-conv, BN, pooling and pixel shuffle on real
    // feature tensors.
    let mut config = fast_config();
    config.fed.rounds = 1;
    config.fed.local_steps = 2;
    let corpus = generate_corpus(&config.corpus).unwrap();
    let clients = build_clients(&corpus).unwrap();
    for kind in ModelKind::ALL {
        let outcome = run_method_on_clients(Method::FedProx, &clients, kind, &config)
            .unwrap_or_else(|e| panic!("{kind}: {e}"));
        assert!(outcome.average_auc.is_finite(), "{kind}");
    }
}

#[test]
fn corpus_scaling_grows_client_data() {
    let tiny = generate_corpus(&CorpusConfig::tiny()).unwrap();
    let mut larger_config = CorpusConfig::tiny();
    larger_config.placement_scale = 0.03;
    let larger = generate_corpus(&larger_config).unwrap();
    assert!(larger.total_train() > tiny.total_train());
    // Both respect the 70/30-by-design structure: train > test everywhere.
    for c in &larger.clients {
        assert!(c.train.len() >= c.test.len(), "client {}", c.spec.index);
    }
}
