//! Property test for the parallel round loop's determinism contract:
//! for *random* small federated configurations, training a round's
//! clients on N worker threads must produce a bit-identical
//! [`MethodOutcome`] to the single-threaded schedule. This is the
//! load-bearing guarantee that lets `FedConfig::parallelism` be a pure
//! wall-clock knob.
//!
//! A companion unit check covers matmul NaN propagation — the kernel-level
//! bug (`0 × NaN` silently skipped) that could otherwise mask divergence
//! between schedules by flushing poisoned values to zero.

use proptest::prelude::*;

use decentralized_routability::fed::{
    methods, Client, ClientSet, FedConfig, Method, MethodOutcome, ModelFactory, Parallelism,
};
use decentralized_routability::nn::models::{FlNet, FlNetConfig};
use decentralized_routability::tensor::rng::Xoshiro256;
use decentralized_routability::tensor::Tensor;

/// A small heterogeneous client: labels keyed to channel 0 with a
/// per-client threshold shift.
fn synthetic_client(id: usize, n_train: usize, n_test: usize, seed: u64) -> Client {
    let threshold = 0.4 + 0.15 * (id as f32 % 3.0) / 3.0;
    let make = |n: usize, salt: u64| -> ClientSet {
        let mut rng = Xoshiro256::seed_from(seed ^ salt);
        let mut x = Tensor::from_fn(&[n, 2, 8, 8], |_| rng.uniform());
        let mut y = Tensor::zeros(&[n, 1, 8, 8]);
        for ni in 0..n {
            for i in 0..64 {
                let v = x.data()[ni * 128 + i];
                y.data_mut()[ni * 64 + i] = if v > threshold { 1.0 } else { 0.0 };
            }
            for i in 0..64 {
                x.data_mut()[ni * 128 + 64 + i] = rng.uniform();
            }
        }
        ClientSet::new(x, y).unwrap()
    };
    Client::new(id, make(n_train, 0xAAAA), make(n_test, 0xBBBB))
}

fn factory() -> ModelFactory {
    Box::new(|seed| {
        let mut rng = Xoshiro256::seed_from(seed);
        Box::new(FlNet::new(
            FlNetConfig {
                in_channels: 2,
                hidden: 4,
                kernel: 3,
                depth: 2,
            },
            &mut rng,
        ))
    })
}

fn assert_bitwise_equal(a: &MethodOutcome, b: &MethodOutcome, what: &str) {
    assert_eq!(a.average_auc.to_bits(), b.average_auc.to_bits(), "{what}");
    assert_eq!(a.per_client_auc.len(), b.per_client_auc.len(), "{what}");
    for (k, (x, y)) in a
        .per_client_auc
        .iter()
        .zip(b.per_client_auc.iter())
        .enumerate()
    {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: client {k}: {x} vs {y}");
    }
    assert_eq!(a.history.len(), b.history.len(), "{what}");
    for (ra, rb) in a.history.iter().zip(b.history.iter()) {
        assert_eq!(ra.round, rb.round, "{what}");
        assert_eq!(
            ra.mean_train_loss.to_bits(),
            rb.mean_train_loss.to_bits(),
            "{what}: round {} training loss",
            ra.round
        );
        for (x, y) in ra.per_client_auc.iter().zip(rb.per_client_auc.iter()) {
            assert_eq!(x.to_bits(), y.to_bits(), "{what}: round {}", ra.round);
        }
    }
}

proptest! {
    // Each case runs two full (tiny) federated experiments; keep the case
    // budget small so the suite stays fast in debug builds.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// N-thread and 1-thread FedProx agree bit for bit on random
    /// configurations (client counts, schedules, proximal strengths,
    /// participation fractions and seeds).
    #[test]
    fn fedprox_is_bitwise_thread_invariant(
        n_clients in 1usize..4,
        rounds in 1usize..3,
        local_steps in 1usize..4,
        batch_size in 1usize..3,
        threads in 2usize..6,
        mu_scaled in 0u32..3,
        participation_pct in 1u32..3,
        eval_every in 0usize..2,
        seed in 0u64..100_000,
    ) {
        let clients: Vec<Client> = (0..n_clients)
            .map(|k| synthetic_client(k + 1, 4, 2, seed ^ (300 + k as u64)))
            .collect();
        let factory = factory();
        let mut config = FedConfig::tiny();
        config.rounds = rounds;
        config.local_steps = local_steps;
        config.batch_size = batch_size;
        config.mu = mu_scaled as f32 * 0.05;
        config.participation = participation_pct as f32 / 2.0; // 0.5 or 1.0
        config.eval_every = eval_every;
        config.seed = seed;

        config.parallelism = Parallelism::serial();
        let serial = methods::run_method(Method::FedProx, &clients, &factory, &config).unwrap();
        config.parallelism = Parallelism::new(threads);
        let parallel = methods::run_method(Method::FedProx, &clients, &factory, &config).unwrap();
        assert_bitwise_equal(&serial, &parallel, "fedprox");
    }
}

/// Kernel-level companion: the matmul the round loop bottoms out in must
/// propagate non-finite values instead of skipping `a == 0` terms.
#[test]
fn matmul_propagates_nan_through_zero_lhs() {
    use decentralized_routability::tensor::linalg::matmul;
    let a = [0.0f32, 2.0, 0.0, 2.0]; // 2×2 with zeros in column 0
    let b = [f32::NAN, 1.0, 1.0, 1.0]; // NaN in row 0
    let mut out = [0.0f32; 4];
    matmul(&a, &b, 2, 2, 2, &mut out);
    // out[i][0] = 0·NaN + 2·1 must be NaN, not 2.
    assert!(out[0].is_nan() && out[2].is_nan(), "{out:?}");
}
