//! Property tests for the parallel subsystems' determinism contract:
//! for *random* small configurations, running on N worker threads must
//! produce bit-identical results to the single-threaded schedule. This
//! is the load-bearing guarantee that lets every thread knob be a pure
//! wall-clock knob. Three layers are pinned:
//!
//! - the federated round loop ([`MethodOutcome`], including every
//!   [`EvalReport`] field in the history),
//! - the parallel [`Evaluator`] (per-client AUC/AP/confusion/histogram),
//! - sharded corpus generation (every feature/label tensor, byte for
//!   byte).
//!
//! A companion unit check covers matmul NaN propagation — the kernel-level
//! bug (`0 × NaN` silently skipped) that could otherwise mask divergence
//! between schedules by flushing poisoned values to zero.

use proptest::prelude::*;

use decentralized_routability::eda::corpus::{
    generate_client_with, generate_corpus_with, CorpusConfig, PAPER_CLIENTS,
};
use decentralized_routability::fed::{
    methods, Client, ClientSet, EvalReport, Evaluator, FedConfig, Method, MethodOutcome,
    ModelFactory, Parallelism,
};
use decentralized_routability::nn::models::{FlNet, FlNetConfig};
use decentralized_routability::nn::state_dict;
use decentralized_routability::tensor::rng::Xoshiro256;
use decentralized_routability::tensor::Tensor;

/// A small heterogeneous client: labels keyed to channel 0 with a
/// per-client threshold shift.
fn synthetic_client(id: usize, n_train: usize, n_test: usize, seed: u64) -> Client {
    let threshold = 0.4 + 0.15 * (id as f32 % 3.0) / 3.0;
    let make = |n: usize, salt: u64| -> ClientSet {
        let mut rng = Xoshiro256::seed_from(seed ^ salt);
        let mut x = Tensor::from_fn(&[n, 2, 8, 8], |_| rng.uniform());
        let mut y = Tensor::zeros(&[n, 1, 8, 8]);
        for ni in 0..n {
            for i in 0..64 {
                let v = x.data()[ni * 128 + i];
                y.data_mut()[ni * 64 + i] = if v > threshold { 1.0 } else { 0.0 };
            }
            for i in 0..64 {
                x.data_mut()[ni * 128 + 64 + i] = rng.uniform();
            }
        }
        ClientSet::new(x, y).unwrap()
    };
    Client::new(id, make(n_train, 0xAAAA), make(n_test, 0xBBBB))
}

fn factory() -> ModelFactory {
    Box::new(|seed| {
        let mut rng = Xoshiro256::seed_from(seed);
        Box::new(FlNet::new(
            FlNetConfig {
                in_channels: 2,
                hidden: 4,
                kernel: 3,
                depth: 2,
            },
            &mut rng,
        ))
    })
}

/// Every [`EvalReport`] field, compared bit for bit: the float metrics
/// via `to_bits`, the confusion and histogram counts exactly.
fn assert_reports_bitwise_equal(a: &[EvalReport], b: &[EvalReport], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: report count");
    for (k, (ra, rb)) in a.iter().zip(b.iter()).enumerate() {
        assert_eq!(
            ra.auc.to_bits(),
            rb.auc.to_bits(),
            "{what}: client {k} AUC: {} vs {}",
            ra.auc,
            rb.auc
        );
        assert_eq!(
            ra.average_precision.to_bits(),
            rb.average_precision.to_bits(),
            "{what}: client {k} AP: {} vs {}",
            ra.average_precision,
            rb.average_precision
        );
        assert_eq!(ra.confusion, rb.confusion, "{what}: client {k} confusion");
        assert_eq!(ra.histogram, rb.histogram, "{what}: client {k} histogram");
    }
}

fn assert_bitwise_equal(a: &MethodOutcome, b: &MethodOutcome, what: &str) {
    assert_eq!(a.average_auc.to_bits(), b.average_auc.to_bits(), "{what}");
    assert_eq!(a.per_client_auc.len(), b.per_client_auc.len(), "{what}");
    for (k, (x, y)) in a
        .per_client_auc
        .iter()
        .zip(b.per_client_auc.iter())
        .enumerate()
    {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: client {k}: {x} vs {y}");
    }
    assert_reports_bitwise_equal(&a.per_client, &b.per_client, what);
    assert_eq!(a.history.len(), b.history.len(), "{what}");
    for (ra, rb) in a.history.iter().zip(b.history.iter()) {
        assert_eq!(ra.round, rb.round, "{what}");
        assert_eq!(
            ra.mean_train_loss.to_bits(),
            rb.mean_train_loss.to_bits(),
            "{what}: round {} training loss",
            ra.round
        );
        for (x, y) in ra.per_client_auc.iter().zip(rb.per_client_auc.iter()) {
            assert_eq!(x.to_bits(), y.to_bits(), "{what}: round {}", ra.round);
        }
        assert_reports_bitwise_equal(
            &ra.per_client,
            &rb.per_client,
            &format!("{what}: round {}", ra.round),
        );
    }
}

proptest! {
    // Each case runs two full (tiny) federated experiments; keep the case
    // budget small so the suite stays fast in debug builds.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// N-thread and 1-thread FedProx agree bit for bit on random
    /// configurations (client counts, schedules, proximal strengths,
    /// participation fractions and seeds).
    #[test]
    fn fedprox_is_bitwise_thread_invariant(
        n_clients in 1usize..4,
        rounds in 1usize..3,
        local_steps in 1usize..4,
        batch_size in 1usize..3,
        threads in 2usize..6,
        mu_scaled in 0u32..3,
        participation_pct in 1u32..3,
        eval_every in 0usize..2,
        seed in 0u64..100_000,
    ) {
        let clients: Vec<Client> = (0..n_clients)
            .map(|k| synthetic_client(k + 1, 4, 2, seed ^ (300 + k as u64)))
            .collect();
        let factory = factory();
        let mut config = FedConfig::tiny();
        config.rounds = rounds;
        config.local_steps = local_steps;
        config.batch_size = batch_size;
        config.mu = mu_scaled as f32 * 0.05;
        config.participation = participation_pct as f32 / 2.0; // 0.5 or 1.0
        config.eval_every = eval_every;
        config.seed = seed;

        config.parallelism = Parallelism::serial();
        let serial = methods::run_method(Method::FedProx, &clients, &factory, &config).unwrap();
        config.parallelism = Parallelism::new(threads);
        let parallel = methods::run_method(Method::FedProx, &clients, &factory, &config).unwrap();
        assert_bitwise_equal(&serial, &parallel, "fedprox");
    }

    /// The parallel [`Evaluator`] agrees bit for bit with its serial
    /// schedule on random fleets, state dicts, batch sizes and thread
    /// counts — every [`EvalReport`] field.
    #[test]
    fn evaluator_is_bitwise_thread_invariant(
        n_clients in 1usize..5,
        batch_size in 1usize..6,
        threads in 2usize..6,
        seed in 0u64..100_000,
    ) {
        let clients: Vec<Client> = (0..n_clients)
            .map(|k| synthetic_client(k + 1, 3, 4, seed ^ (700 + k as u64)))
            .collect();
        let factory = factory();
        // Personalized deployment: a distinct model per client.
        let states: Vec<_> = (0..n_clients)
            .map(|k| state_dict(factory(seed ^ k as u64).as_mut()))
            .collect();
        let state_refs: Vec<&_> = states.iter().collect();
        let serial = Evaluator::new(Parallelism::serial(), batch_size)
            .eval_states(&factory, seed, &clients, &state_refs)
            .unwrap();
        let parallel = Evaluator::new(Parallelism::new(threads), batch_size)
            .eval_states(&factory, seed, &clients, &state_refs)
            .unwrap();
        assert_reports_bitwise_equal(&serial, &parallel, "evaluator");
    }
}

/// Sharded corpus generation must be byte-identical between 1 and 4
/// worker threads: every client's feature and label tensors, bit for
/// bit. (The work units are placements across all clients, so 4 threads
/// genuinely interleave clients.)
#[test]
fn corpus_generation_is_bitwise_thread_invariant() {
    let mut config = CorpusConfig::tiny();
    config.placement_scale = 0.01; // a few multi-placement designs
    let serial = generate_corpus_with(&config, Parallelism::serial()).expect("serial corpus");
    let sharded = generate_corpus_with(&config, Parallelism::new(4)).expect("sharded corpus");
    assert_eq!(serial.clients.len(), sharded.clients.len());
    for (ca, cb) in serial.clients.iter().zip(sharded.clients.iter()) {
        assert_eq!(ca.spec, cb.spec);
        for (split, da, db) in [
            ("train", &ca.train, &cb.train),
            ("test", &ca.test, &cb.test),
        ] {
            assert_eq!(
                da.len(),
                db.len(),
                "client {} {split} length",
                ca.spec.index
            );
            for (i, (sa, sb)) in da.samples().iter().zip(db.samples().iter()).enumerate() {
                assert_eq!(
                    sa.design, sb.design,
                    "client {} {split} #{i}",
                    ca.spec.index
                );
                let feats_a: Vec<u32> = sa.features.data().iter().map(|v| v.to_bits()).collect();
                let feats_b: Vec<u32> = sb.features.data().iter().map(|v| v.to_bits()).collect();
                assert_eq!(
                    feats_a, feats_b,
                    "client {} {split} #{i} features drifted",
                    ca.spec.index
                );
                let labels_a: Vec<u32> = sa.label.data().iter().map(|v| v.to_bits()).collect();
                let labels_b: Vec<u32> = sb.label.data().iter().map(|v| v.to_bits()).collect();
                assert_eq!(
                    labels_a, labels_b,
                    "client {} {split} #{i} labels drifted",
                    ca.spec.index
                );
            }
        }
    }
}

/// Single-client sharding (placements only, no cross-client interleave)
/// is also thread-invariant — the `generate_client` public path.
#[test]
fn client_generation_is_bitwise_thread_invariant() {
    let mut config = CorpusConfig::tiny();
    config.placement_scale = 0.02;
    let spec = &PAPER_CLIENTS[0];
    let serial = generate_client_with(spec, &config, Parallelism::serial()).expect("serial");
    let sharded = generate_client_with(spec, &config, Parallelism::new(4)).expect("sharded");
    assert_eq!(serial, sharded);
}

/// Kernel-level companion: the matmul the round loop bottoms out in must
/// propagate non-finite values instead of skipping `a == 0` terms.
#[test]
fn matmul_propagates_nan_through_zero_lhs() {
    use decentralized_routability::tensor::linalg::matmul;
    let a = [0.0f32, 2.0, 0.0, 2.0]; // 2×2 with zeros in column 0
    let b = [f32::NAN, 1.0, 1.0, 1.0]; // NaN in row 0
    let mut out = [0.0f32; 4];
    matmul(&a, &b, 2, 2, 2, &mut out);
    // out[i][0] = 0·NaN + 2·1 must be NaN, not 2.
    assert!(out[0].is_nan() && out[2].is_nan(), "{out:?}");
}
