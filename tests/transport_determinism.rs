//! Transport-boundary determinism guards (contract rule 7 extended to
//! the wire, plus the new rule 8 machinery's sync baseline):
//!
//! - a FedProx run (and its FedAvg special case, `mu = 0`) must produce
//!   **bitwise-identical** `MethodOutcome`s — per-client AUCs *and* the
//!   full round history — whether the fleet lives in-process, behind
//!   in-process channel transports, or behind real Unix-domain sockets
//!   served by per-client threads,
//! - the equality must hold at every `RTE_THREADS` × `RTE_SIMD` cell,
//!   because both endpoints re-derive the same per-`(round, client)`
//!   minibatch streams regardless of schedule,
//! - (release-gated) the `rte-coordinator` binary driving 8 real
//!   `rte-client` *processes* over UDS must print the same table bytes
//!   as the in-process bench path for the same `(clients, seed, quick)`
//!   config.

use std::sync::Mutex;

use decentralized_routability::fed::methods::run_method;
use decentralized_routability::fed::{
    local_links, run_rounds_over, Client, ClientSession, ClientSet, FedConfig, Method,
    MethodOutcome, ModelFactory, Parallelism, SecureConfig,
};
use decentralized_routability::net::{UdsListener, UdsTransport};
use decentralized_routability::nn::models::{FlNet, FlNetConfig};
use decentralized_routability::tensor::rng::Xoshiro256;
use decentralized_routability::tensor::simd::{self, SimdBackend};
use decentralized_routability::tensor::Tensor;

/// Tests that mutate the process-global SIMD arm serialize on this lock
/// (same pattern as `tests/simd_determinism.rs`).
static GLOBAL_ARM: Mutex<()> = Mutex::new(());

/// A small heterogeneous client: labels keyed to channel 0 with a
/// per-client threshold shift.
fn synthetic_client(id: usize, n_train: usize, n_test: usize, seed: u64) -> Client {
    let threshold = 0.45 + 0.1 * (id as f32 % 3.0) / 3.0;
    let make = |n: usize, salt: u64| -> ClientSet {
        let mut rng = Xoshiro256::seed_from(seed ^ salt);
        let mut x = Tensor::from_fn(&[n, 2, 8, 8], |_| rng.uniform());
        let mut y = Tensor::zeros(&[n, 1, 8, 8]);
        for ni in 0..n {
            for i in 0..64 {
                let v = x.data()[ni * 128 + i];
                y.data_mut()[ni * 64 + i] = if v > threshold { 1.0 } else { 0.0 };
            }
            for i in 0..64 {
                x.data_mut()[ni * 128 + 64 + i] = rng.uniform();
            }
        }
        ClientSet::new(x, y).unwrap()
    };
    Client::new(id, make(n_train, 0xAAAA), make(n_test, 0xBBBB))
}

fn clients(n: usize) -> Vec<Client> {
    (0..n)
        .map(|k| synthetic_client(k + 1, 5, 3, 9300 + k as u64))
        .collect()
}

fn factory() -> ModelFactory {
    Box::new(|seed| {
        let mut rng = Xoshiro256::seed_from(seed);
        Box::new(FlNet::new(
            FlNetConfig {
                in_channels: 2,
                hidden: 4,
                kernel: 3,
                depth: 2,
            },
            &mut rng,
        ))
    })
}

fn config(mu: f32, threads: usize) -> FedConfig {
    let mut config = FedConfig::tiny();
    config.rounds = 2;
    config.local_steps = 2;
    config.batch_size = 2;
    config.eval_every = 1;
    config.mu = mu;
    config.seed = 4207;
    config.parallelism = Parallelism::new(threads);
    config
}

/// Leg 1: the in-process harness (`run_method`), no wire anywhere.
fn run_in_process(config: &FedConfig) -> MethodOutcome {
    run_method(Method::FedProx, &clients(4), &factory(), config).unwrap()
}

/// Leg 2: every parameter set crosses the frame codec through in-process
/// channel transports.
fn run_channel(config: &FedConfig, secure: Option<SecureConfig>) -> MethodOutcome {
    let fleet = clients(4);
    let factory = factory();
    let mut links = local_links(&fleet, &factory, config, secure).unwrap();
    run_rounds_over(
        Method::FedProx,
        &fleet,
        &factory,
        config,
        &mut links,
        secure,
    )
    .unwrap()
}

/// Leg 3: every parameter set crosses a real Unix-domain socket; each
/// client runs `ClientSession::serve` on its own thread, rebuilding its
/// private fleet view locally exactly like the `rte-client` binary.
fn run_uds(config: &FedConfig, secure: Option<SecureConfig>, tag: &str) -> MethodOutcome {
    let dir = std::env::temp_dir().join(format!("rte-transport-det-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{tag}.sock"));
    let listener = UdsListener::bind(&path).unwrap();

    let fleet = clients(4);
    let n = fleet.len();
    let servers: Vec<_> = (0..n)
        .map(|me| {
            let path = path.clone();
            let config = config.clone();
            std::thread::spawn(move || {
                let fleet = clients(4);
                let factory = factory();
                let mut session =
                    ClientSession::new(&fleet, me, &factory, &config, secure).unwrap();
                let mut transport = UdsTransport::connect(&path).unwrap();
                session.hello(&mut transport).unwrap();
                session.serve(&mut transport).unwrap();
            })
        })
        .collect();

    // Order the accepted links by the fleet index each hello announces —
    // connection order is scheduler-dependent, the round schedule is not.
    let mut slots: Vec<Option<UdsTransport>> = (0..n).map(|_| None).collect();
    for _ in 0..n {
        let mut link = listener.accept().unwrap();
        let (_, message) = decentralized_routability::fed::wire::recv_message(&mut link).unwrap();
        let decentralized_routability::fed::wire::Message::Hello { client, .. } = message else {
            panic!("client did not open with a hello");
        };
        assert!(
            slots[client as usize].replace(link).is_none(),
            "duplicate hello"
        );
    }
    let mut links: Vec<UdsTransport> = slots.into_iter().map(Option::unwrap).collect();

    let factory = factory();
    let outcome = run_rounds_over(
        Method::FedProx,
        &fleet,
        &factory,
        config,
        &mut links,
        secure,
    )
    .unwrap();
    for server in servers {
        server.join().unwrap();
    }
    let _ = std::fs::remove_file(&path);
    outcome
}

fn assert_bitwise_equal(a: &MethodOutcome, b: &MethodOutcome, what: &str) {
    // `MethodOutcome: PartialEq` compares every f32/f64 by value; equal
    // NaNs or -0.0 would mask drift, so pin the bit patterns too.
    assert_eq!(a, b, "{what}: outcome drifted");
    assert_eq!(
        a.per_client.len(),
        b.per_client.len(),
        "{what}: client count"
    );
    for (k, (ra, rb)) in a.per_client.iter().zip(b.per_client.iter()).enumerate() {
        assert_eq!(
            ra.auc.to_bits(),
            rb.auc.to_bits(),
            "{what}: client {k} AUC bits"
        );
    }
    assert_eq!(a.history.len(), b.history.len(), "{what}: history length");
    for (ha, hb) in a.history.iter().zip(b.history.iter()) {
        assert_eq!(ha.round, hb.round, "{what}: history round");
        assert_eq!(
            ha.average_auc.to_bits(),
            hb.average_auc.to_bits(),
            "{what}: round {} AUC bits",
            ha.round
        );
        assert_eq!(
            ha.mean_train_loss.to_bits(),
            hb.mean_train_loss.to_bits(),
            "{what}: round {} loss bits",
            ha.round
        );
    }
}

/// FedProx (and FedAvg as its `mu = 0` special case) must not drift by a
/// bit between the in-process harness, the channel transport, and real
/// Unix-domain sockets — at every thread count × SIMD arm cell.
#[test]
fn transports_are_bitwise_identical_across_threads_and_simd() {
    let _guard = GLOBAL_ARM.lock().unwrap();
    let before = simd::global();

    for (label, mu) in [("fedprox", 0.1f32), ("fedavg", 0.0f32)] {
        simd::set_global(SimdBackend::Scalar);
        let reference = run_in_process(&config(mu, 1));
        assert!(
            reference.history.iter().all(|r| r.average_auc.is_finite()),
            "{label}: reference run must stay finite"
        );

        for threads in [1usize, 4] {
            for arm in [SimdBackend::Scalar, SimdBackend::detect()] {
                simd::set_global(arm);
                let cell = config(mu, threads);
                let what = format!("{label} / {threads} threads / {arm} arm");
                assert_bitwise_equal(
                    &reference,
                    &run_in_process(&cell),
                    &format!("{what} / in-process"),
                );
                assert_bitwise_equal(
                    &reference,
                    &run_channel(&cell, None),
                    &format!("{what} / channel"),
                );
                assert_bitwise_equal(
                    &reference,
                    &run_uds(&cell, None, &format!("{label}-{threads}-{arm}")),
                    &format!("{what} / uds"),
                );
            }
        }
    }
    simd::set_global(before);
}

/// Pairwise-masked secure aggregation over a real socket must be
/// bitwise-identical to the same secure run over the channel transport
/// (the masks and the wire add zero nondeterminism), and must agree with
/// the plain run on every rank-based metric. The training losses are
/// *not* compared bit-for-bit against plain: secure aggregation
/// quantizes to `2^-20` fixed point (its documented approximation), so
/// later rounds train from a global that differs from plain by ~1e-6 —
/// invisible to AUC/confusion/histograms, visible to a float loss. Mask
/// cancellation itself is exact; `crates/fed/tests/secure_aggregation.rs`
/// pins masked == unmasked-quantized bit-for-bit.
#[test]
fn secure_aggregation_over_uds_is_reproducible_and_rank_identical_to_plain() {
    let _guard = GLOBAL_ARM.lock().unwrap();
    let before = simd::global();
    simd::set_global(SimdBackend::Scalar);

    let cfg = config(0.1, 1);
    let secure_channel = run_channel(&cfg, Some(SecureConfig::default()));
    let secure_uds = run_uds(&cfg, Some(SecureConfig::default()), "secure-masked");
    assert_bitwise_equal(&secure_channel, &secure_uds, "secure: channel vs uds");

    let plain = run_uds(&cfg, None, "secure-plain");
    assert_eq!(
        plain.per_client, secure_uds.per_client,
        "secure must not change any final rank-based metric"
    );
    for (hp, hs) in plain.history.iter().zip(secure_uds.history.iter()) {
        assert_eq!(hp.per_client, hs.per_client, "round {} reports", hp.round);
        assert!(
            (hp.mean_train_loss - hs.mean_train_loss).abs() < 1e-5,
            "round {}: quantization error exceeded its budget: {} vs {}",
            hp.round,
            hp.mean_train_loss,
            hs.mean_train_loss
        );
    }

    simd::set_global(before);
}

/// Release-gated end-to-end pin: the `rte-coordinator` binary driving 8
/// real `rte-client` processes over UDS must print byte-for-byte the
/// table the in-process bench path computes for the same config. CI runs
/// this via `--release -- --include-ignored`; it is `#[ignore]`d by
/// default because 9 unoptimized processes are needlessly slow.
#[test]
#[ignore = "release-only: spawns 8 client processes (CI runs with --include-ignored)"]
fn coordinator_with_eight_client_processes_matches_in_process_table() {
    use decentralized_routability::core::report::render_table;
    use decentralized_routability::core::{
        build_experiment_clients, run_method_on_clients, transport_config, TableResult,
    };
    use decentralized_routability::nn::models::ModelKind;

    let config = transport_config(8, 42, true);
    let fleet = build_experiment_clients(&config).unwrap();
    let outcome =
        run_method_on_clients(Method::FedProx, &fleet, ModelKind::FlNet, &config).unwrap();
    let expected = format!(
        "{}\n",
        render_table(&TableResult {
            model: ModelKind::FlNet,
            n_clients: fleet.len(),
            rows: vec![outcome],
        })
    );

    let socket =
        std::env::temp_dir().join(format!("rte-transport-e2e-{}.sock", std::process::id()));
    let output = std::process::Command::new(env!("CARGO_BIN_EXE_rte-coordinator"))
        .args([
            "--clients",
            "8",
            "--clients-procs",
            "8",
            "--quick",
            "--seed",
            "42",
        ])
        .arg("--socket")
        .arg(&socket)
        .output()
        .unwrap();
    assert!(
        output.status.success(),
        "coordinator failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8(output.stdout).unwrap();
    assert_eq!(
        stdout, expected,
        "8-process UDS table must be byte-identical to the in-process table"
    );
}
