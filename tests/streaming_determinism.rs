//! The streaming determinism contract: training and evaluation fed from
//! on-disk corpus shards must be **bit-identical** to the in-memory
//! path, across worker-thread counts (the existing `RTE_THREADS={1,4}`
//! guarantee) *and* across streaming chunk sizes (the new axis). Four
//! layers are pinned:
//!
//! - the shard *files* themselves: streamed generation writes the same
//!   bytes at every `(threads, chunk)` combination,
//! - the shard *contents*: samples read back equal the in-memory
//!   generator's tensors bit for bit,
//! - full federated training (`MethodOutcome` including every
//!   `EvalReport` in the history) on streamed clients vs in-memory
//!   clients, at 1 and 4 threads and two chunk sizes,
//! - the parallel `Evaluator` on streamed clients vs in-memory clients.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use decentralized_routability::core::{
    build_clients, build_experiment_clients, ExperimentConfig, ShardBackend,
};
use decentralized_routability::eda::corpus::{generate_corpus, CorpusConfig};
use decentralized_routability::eda::shard::CorpusWriter;
use decentralized_routability::fed::{
    methods, Client, EvalReport, Evaluator, Method, MethodOutcome, Parallelism,
};
use decentralized_routability::nn::state_dict;

static DIR_COUNTER: AtomicUsize = AtomicUsize::new(0);

fn scratch_dir(tag: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!(
        "stream-det-{tag}-{}-{}",
        std::process::id(),
        DIR_COUNTER.fetch_add(1, Ordering::Relaxed)
    ))
}

/// A corpus small enough for debug test runs but with several
/// placements per design, so chunk boundaries actually cut through
/// splits.
fn corpus_config() -> CorpusConfig {
    let mut config = CorpusConfig::tiny();
    config.placement_scale = 0.02;
    config
}

/// Every [`EvalReport`] field, compared bit for bit.
fn assert_reports_bitwise_equal(a: &[EvalReport], b: &[EvalReport], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: report count");
    for (k, (ra, rb)) in a.iter().zip(b.iter()).enumerate() {
        assert_eq!(
            ra.auc.to_bits(),
            rb.auc.to_bits(),
            "{what}: client {k} AUC: {} vs {}",
            ra.auc,
            rb.auc
        );
        assert_eq!(
            ra.average_precision.to_bits(),
            rb.average_precision.to_bits(),
            "{what}: client {k} AP"
        );
        assert_eq!(ra.confusion, rb.confusion, "{what}: client {k} confusion");
        assert_eq!(ra.histogram, rb.histogram, "{what}: client {k} histogram");
    }
}

fn assert_outcomes_bitwise_equal(a: &MethodOutcome, b: &MethodOutcome, what: &str) {
    assert_eq!(a.average_auc.to_bits(), b.average_auc.to_bits(), "{what}");
    for (k, (x, y)) in a
        .per_client_auc
        .iter()
        .zip(b.per_client_auc.iter())
        .enumerate()
    {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: client {k}: {x} vs {y}");
    }
    assert_reports_bitwise_equal(&a.per_client, &b.per_client, what);
    assert_eq!(a.history.len(), b.history.len(), "{what}: history length");
    for (ra, rb) in a.history.iter().zip(b.history.iter()) {
        assert_eq!(ra.round, rb.round, "{what}");
        assert_eq!(
            ra.mean_train_loss.to_bits(),
            rb.mean_train_loss.to_bits(),
            "{what}: round {} training loss",
            ra.round
        );
        assert_reports_bitwise_equal(
            &ra.per_client,
            &rb.per_client,
            &format!("{what}: round {}", ra.round),
        );
    }
}

/// Streamed generation writes byte-identical shard files at every
/// `(threads, chunk)` combination — the on-disk analogue of the
/// in-memory thread-invariance guarantee, with the chunk-size axis on
/// top.
#[test]
fn shard_files_are_thread_and_chunk_invariant() {
    let config = corpus_config();
    let reference_dir = scratch_dir("ref");
    CorpusWriter::new(&reference_dir)
        .with_chunk(1)
        .with_parallelism(Parallelism::serial())
        .write(&config)
        .unwrap();
    let mut reference_files: Vec<(String, Vec<u8>)> = std::fs::read_dir(&reference_dir)
        .unwrap()
        .map(|e| {
            let path = e.unwrap().path();
            (
                path.file_name().unwrap().to_string_lossy().into_owned(),
                std::fs::read(&path).unwrap(),
            )
        })
        .collect();
    reference_files.sort();
    assert_eq!(reference_files.len(), 18, "9 clients × 2 splits");
    for (threads, chunk) in [(1, 7), (4, 1), (4, 7), (4, 1000)] {
        let dir = scratch_dir(&format!("t{threads}c{chunk}"));
        CorpusWriter::new(&dir)
            .with_chunk(chunk)
            .with_parallelism(Parallelism::new(threads))
            .write(&config)
            .unwrap();
        for (name, reference_bytes) in &reference_files {
            let bytes = std::fs::read(dir.join(name)).unwrap();
            assert_eq!(
                &bytes, reference_bytes,
                "{name} drifted at threads={threads} chunk={chunk}"
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
    std::fs::remove_dir_all(&reference_dir).unwrap();
}

/// Samples streamed back from shards equal the in-memory generator's
/// tensors bit for bit (write→read round trip at corpus scale).
#[test]
fn shard_contents_match_in_memory_corpus_bitwise() {
    let config = corpus_config();
    let dir = scratch_dir("contents");
    CorpusWriter::new(&dir)
        .with_chunk(5)
        .write(&config)
        .unwrap();
    let corpus = generate_corpus(&config).unwrap();
    let reader = decentralized_routability::eda::shard::CorpusReader::open(&dir).unwrap();
    assert_eq!(reader.clients().len(), corpus.clients.len());
    for (shards, client) in reader.clients().iter().zip(&corpus.clients) {
        assert_eq!(shards.client_index, client.spec.index);
        for (shard, dataset) in [(&shards.train, &client.train), (&shards.test, &client.test)] {
            assert_eq!(shard.len(), dataset.len());
            let streamed = shard.read_range(0..shard.len()).unwrap();
            for (i, (got, want)) in streamed.iter().zip(dataset.samples()).enumerate() {
                assert_eq!(got.design, want.design);
                let got_bits: Vec<u32> = got.features.data().iter().map(|v| v.to_bits()).collect();
                let want_bits: Vec<u32> =
                    want.features.data().iter().map(|v| v.to_bits()).collect();
                assert_eq!(
                    got_bits, want_bits,
                    "client {} sample {i} features drifted",
                    client.spec.index
                );
                let got_bits: Vec<u32> = got.label.data().iter().map(|v| v.to_bits()).collect();
                let want_bits: Vec<u32> = want.label.data().iter().map(|v| v.to_bits()).collect();
                assert_eq!(got_bits, want_bits);
            }
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Builds the experiment clients both ways from one config.
fn both_client_sets(config: &ExperimentConfig) -> (Vec<Client>, Vec<Client>) {
    let corpus = generate_corpus(&config.corpus).unwrap();
    let in_memory = build_clients(&corpus).unwrap();
    let streamed = build_experiment_clients(config).unwrap();
    (in_memory, streamed)
}

/// Full federated training on streamed clients is bit-identical to the
/// in-memory path — every `MethodOutcome` field including the per-round
/// `EvalReport` history — across `RTE_THREADS`-style thread counts and
/// two chunk sizes.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "runs 8 real federated experiments; release only"
)]
fn streamed_training_is_bitwise_identical_to_in_memory() {
    let dir = scratch_dir("train");
    for chunk in [2usize, 9] {
        let mut config = ExperimentConfig::tiny()
            .with_corpus_dir(&dir)
            .with_stream_chunk(chunk);
        config.corpus = corpus_config();
        config.fed.eval_every = 1; // record every round's reports
        let (in_memory, streamed) = both_client_sets(&config);
        for threads in [1usize, 4] {
            let mut fed = config.fed.clone();
            fed.parallelism = Parallelism::new(threads);
            let factory = decentralized_routability::core::model_factory(
                decentralized_routability::nn::models::ModelKind::FlNet,
                config.model_scale,
            );
            let a = methods::run_method(Method::FedProx, &in_memory, &factory, &fed).unwrap();
            let b = methods::run_method(Method::FedProx, &streamed, &factory, &fed).unwrap();
            assert_outcomes_bitwise_equal(
                &a,
                &b,
                &format!("fedprox threads={threads} chunk={chunk}"),
            );
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The parallel evaluator produces bit-identical `EvalReport`s from
/// streamed and in-memory clients at both thread counts and two chunk
/// sizes.
#[test]
fn streamed_evaluation_is_bitwise_identical_to_in_memory() {
    let dir = scratch_dir("eval");
    for chunk in [1usize, 6] {
        let mut config = ExperimentConfig::tiny()
            .with_corpus_dir(&dir)
            .with_stream_chunk(chunk);
        config.corpus = corpus_config();
        let (in_memory, streamed) = both_client_sets(&config);
        let factory = decentralized_routability::core::model_factory(
            decentralized_routability::nn::models::ModelKind::FlNet,
            config.model_scale,
        );
        let global = state_dict(factory(11).as_mut());
        for threads in [1usize, 4] {
            let evaluator = Evaluator::new(Parallelism::new(threads), 3);
            let a = evaluator
                .eval_global(&factory, 11, &in_memory, &global)
                .unwrap();
            let b = evaluator
                .eval_global(&factory, 11, &streamed, &global)
                .unwrap();
            assert_reports_bitwise_equal(
                &a,
                &b,
                &format!("evaluator threads={threads} chunk={chunk}"),
            );
        }
        // The streamed pass stayed within the double-buffer bound.
        for client in &streamed {
            let stream = client.test.as_streaming().expect("streamed backend");
            assert!(
                stream.peak_resident_samples() <= 2 * chunk,
                "client {}: peak {} exceeds 2×chunk {}",
                client.id,
                stream.peak_resident_samples(),
                2 * chunk
            );
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The memory-mapped backend serves the same bits as the read backend
/// and the in-memory generator at every `RTE_THREADS × chunk` cell:
/// raw batches bitwise, and the parallel evaluator's full `EvalReport`s
/// at 1 and 4 threads.
#[test]
fn mmap_backend_is_bitwise_identical_at_every_cell() {
    let dir = scratch_dir("mmap");
    for chunk in [1usize, 6] {
        let mut config = ExperimentConfig::tiny()
            .with_corpus_dir(&dir)
            .with_stream_chunk(chunk);
        config.corpus = corpus_config();
        let (in_memory, streamed) = both_client_sets(&config);
        let mapped =
            build_experiment_clients(&config.clone().with_shard_backend(ShardBackend::Mmap))
                .unwrap();
        for ((m, s), p) in in_memory.iter().zip(&streamed).zip(&mapped) {
            assert!(p.train.as_mapped().is_some(), "mapped backend selected");
            let want = m.test.minibatch_range(0..m.test.len());
            assert_eq!(want, p.test.minibatch_range(0..p.test.len()));
            assert_eq!(
                s.test.minibatch_range(0..s.test.len()),
                p.test.minibatch_range(0..p.test.len())
            );
        }
        let factory = decentralized_routability::core::model_factory(
            decentralized_routability::nn::models::ModelKind::FlNet,
            config.model_scale,
        );
        let global = state_dict(factory(11).as_mut());
        for threads in [1usize, 4] {
            let evaluator = Evaluator::new(Parallelism::new(threads), 3);
            let a = evaluator
                .eval_global(&factory, 11, &in_memory, &global)
                .unwrap();
            let b = evaluator
                .eval_global(&factory, 11, &mapped, &global)
                .unwrap();
            assert_reports_bitwise_equal(
                &a,
                &b,
                &format!("mmap evaluator threads={threads} chunk={chunk}"),
            );
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Full federated training on memory-mapped clients is bit-identical to
/// the in-memory path, at 1 and 4 threads.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "runs 4 real federated experiments; release only"
)]
fn mmap_training_is_bitwise_identical_to_in_memory() {
    let dir = scratch_dir("mmap-train");
    let mut config = ExperimentConfig::tiny()
        .with_corpus_dir(&dir)
        .with_stream_chunk(3)
        .with_shard_backend(ShardBackend::Mmap);
    config.corpus = corpus_config();
    config.fed.eval_every = 1;
    let (in_memory, mapped) = both_client_sets(&config);
    for threads in [1usize, 4] {
        let mut fed = config.fed.clone();
        fed.parallelism = Parallelism::new(threads);
        let factory = decentralized_routability::core::model_factory(
            decentralized_routability::nn::models::ModelKind::FlNet,
            config.model_scale,
        );
        let a = methods::run_method(Method::FedProx, &in_memory, &factory, &fed).unwrap();
        let b = methods::run_method(Method::FedProx, &mapped, &factory, &fed).unwrap();
        assert_outcomes_bitwise_equal(&a, &b, &format!("mmap fedprox threads={threads}"));
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Chunk-codec-compressed shards stream the same bits as the raw files
/// and the in-memory generator (the on-disk encoding is invisible to
/// training).
#[test]
fn compressed_shards_stream_bitwise_identical_samples() {
    let dir = scratch_dir("packed");
    let mut config = ExperimentConfig::tiny()
        .with_corpus_dir(&dir)
        .with_stream_chunk(4);
    config.corpus = corpus_config();
    let (in_memory, raw) = both_client_sets(&config);
    let packed = build_experiment_clients(&config.clone().with_compressed_shards()).unwrap();
    for ((m, r), p) in in_memory.iter().zip(&raw).zip(&packed) {
        assert_eq!(m.id, p.id);
        let want = m.test.minibatch_range(0..m.test.len());
        assert_eq!(want, p.test.minibatch_range(0..p.test.len()));
        assert_eq!(
            r.train.minibatch_range(0..r.train.len()),
            p.train.minibatch_range(0..p.train.len())
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Centralized training pools streamed splits through `ConcatSource`
/// without materializing them — and still matches the in-memory pooled
/// result bit for bit.
#[test]
fn streamed_centralized_pooling_matches_in_memory() {
    let dir = scratch_dir("central");
    let mut config = ExperimentConfig::tiny()
        .with_corpus_dir(&dir)
        .with_stream_chunk(4);
    config.corpus = corpus_config();
    let (in_memory, streamed) = both_client_sets(&config);
    let factory = decentralized_routability::core::model_factory(
        decentralized_routability::nn::models::ModelKind::FlNet,
        config.model_scale,
    );
    let a = methods::run_method(Method::Centralized, &in_memory, &factory, &config.fed).unwrap();
    let b = methods::run_method(Method::Centralized, &streamed, &factory, &config.fed).unwrap();
    assert_outcomes_bitwise_equal(&a, &b, "centralized");
    std::fs::remove_dir_all(&dir).unwrap();
}
