//! Determinism and robustness guards for the hostile-client scenario
//! harness (contract rule 6):
//!
//! - a full robustness grid — attacks × defenses through `run_scenario`,
//!   rendered with `render_robustness_grid` — must be **byte-identical**
//!   across worker-thread counts and SIMD arms, exactly like the honest
//!   pipeline,
//! - the headline robustness claim must hold: a sign-flip attack that
//!   diverges clients under the weighted mean (typed
//!   `FedError::ClientDiverged` cells, never a panic) leaves the
//!   coordinate-wise median standing.

use std::sync::Mutex;

use decentralized_routability::core::report::render_robustness_grid;
use decentralized_routability::fed::{
    run_scenario, Aggregation, Attack, Client, ClientSet, FedConfig, FedError, Method,
    ModelFactory, Parallelism, ScenarioConfig, ScenarioOutcome,
};
use decentralized_routability::nn::models::{FlNet, FlNetConfig};
use decentralized_routability::tensor::rng::Xoshiro256;
use decentralized_routability::tensor::simd::{self, SimdBackend};
use decentralized_routability::tensor::Tensor;

/// Tests that mutate the process-global SIMD arm serialize on this lock
/// (same pattern as `tests/simd_determinism.rs`).
static GLOBAL_ARM: Mutex<()> = Mutex::new(());

/// A small heterogeneous client: labels keyed to channel 0 with a
/// per-client threshold shift.
fn synthetic_client(id: usize, n_train: usize, n_test: usize, seed: u64) -> Client {
    let threshold = 0.4 + 0.15 * (id as f32 % 3.0) / 3.0;
    let make = |n: usize, salt: u64| -> ClientSet {
        let mut rng = Xoshiro256::seed_from(seed ^ salt);
        let mut x = Tensor::from_fn(&[n, 2, 8, 8], |_| rng.uniform());
        let mut y = Tensor::zeros(&[n, 1, 8, 8]);
        for ni in 0..n {
            for i in 0..64 {
                let v = x.data()[ni * 128 + i];
                y.data_mut()[ni * 64 + i] = if v > threshold { 1.0 } else { 0.0 };
            }
            for i in 0..64 {
                x.data_mut()[ni * 128 + 64 + i] = rng.uniform();
            }
        }
        ClientSet::new(x, y).unwrap()
    };
    Client::new(id, make(n_train, 0xAAAA), make(n_test, 0xBBBB))
}

fn clients(n: usize) -> Vec<Client> {
    (0..n)
        .map(|k| synthetic_client(k + 1, 4, 2, 7100 + k as u64))
        .collect()
}

fn factory() -> ModelFactory {
    Box::new(|seed| {
        let mut rng = Xoshiro256::seed_from(seed);
        Box::new(FlNet::new(
            FlNetConfig {
                in_channels: 2,
                hidden: 4,
                kernel: 3,
                depth: 2,
            },
            &mut rng,
        ))
    })
}

fn config() -> FedConfig {
    let mut config = FedConfig::tiny();
    config.rounds = 2;
    config.local_steps = 2;
    config.batch_size = 2;
    config.seed = 42;
    config
}

/// Runs the miniature table6 grid — every injection path (clean, data
/// poisoning, Byzantine corruption, dropout) × every defense — and
/// renders it, returning the outcomes plus the exact bytes a bench run
/// would print.
fn run_grid(threads: usize) -> (Vec<ScenarioOutcome>, String) {
    let clients = clients(4);
    let factory = factory();
    let mut config = config();
    config.parallelism = Parallelism::new(threads);
    let attacks = [
        Attack::None,
        Attack::LabelNoise { rate: 0.3 },
        Attack::SignFlip { scale: 4.0 },
        Attack::ScaledNoise { sigma: 0.5 },
    ];
    let defenses = [
        Aggregation::WeightedMean,
        Aggregation::Median,
        Aggregation::TrimmedMean { trim_ratio: 0.25 },
    ];
    let mut outcomes = Vec::new();
    let mut rendered = String::new();
    for attack in attacks {
        let scenario = ScenarioConfig::honest(11, clients.len())
            .hostile_tail(1, attack)
            .with_dropout(0.2);
        let mut rows = Vec::new();
        for defense in defenses {
            let mut fed = config.clone();
            fed.aggregation = defense;
            rows.push(run_scenario(Method::FedProx, &clients, &factory, &fed, &scenario).unwrap());
        }
        rendered.push_str(&render_robustness_grid(
            attack.label(),
            clients.len(),
            &rows,
        ));
        outcomes.extend(rows);
    }
    (outcomes, rendered)
}

fn assert_outcomes_bitwise_equal(a: &[ScenarioOutcome], b: &[ScenarioOutcome], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: grid size");
    for (i, (oa, ob)) in a.iter().zip(b.iter()).enumerate() {
        assert_eq!(oa.method, ob.method, "{what}: row {i} method");
        assert_eq!(oa.aggregation, ob.aggregation, "{what}: row {i} defense");
        assert_eq!(oa.diverged(), ob.diverged(), "{what}: row {i} divergence");
        for (k, (ca, cb)) in oa.cells.iter().zip(ob.cells.iter()).enumerate() {
            match (ca, cb) {
                (Ok(ra), Ok(rb)) => {
                    assert_eq!(
                        ra.auc.to_bits(),
                        rb.auc.to_bits(),
                        "{what}: row {i} client {k} AUC: {} vs {}",
                        ra.auc,
                        rb.auc
                    );
                    assert_eq!(
                        ra.average_precision.to_bits(),
                        rb.average_precision.to_bits(),
                        "{what}: row {i} client {k} AP"
                    );
                    assert_eq!(ra.confusion, rb.confusion, "{what}: row {i} client {k}");
                    assert_eq!(ra.histogram, rb.histogram, "{what}: row {i} client {k}");
                }
                (Err(ea), Err(eb)) => {
                    assert_eq!(ea, eb, "{what}: row {i} client {k} error");
                }
                _ => panic!("{what}: row {i} client {k}: healthy/diverged disagree"),
            }
        }
    }
}

/// The full attack × defense grid, trained and evaluated end to end,
/// must not drift by a single bit (nor a single output byte) across
/// `RTE_THREADS`-style worker budgets and `RTE_SIMD` arms.
#[test]
fn table6_grid_is_bitwise_invariant_across_threads_and_simd() {
    let _guard = GLOBAL_ARM.lock().unwrap();
    let before = simd::global();

    simd::set_global(SimdBackend::Scalar);
    let (reference, reference_text) = run_grid(1);
    assert!(!reference.is_empty());

    for threads in [1usize, 4] {
        for arm in [SimdBackend::Scalar, SimdBackend::detect()] {
            simd::set_global(arm);
            let (grid, text) = run_grid(threads);
            assert_outcomes_bitwise_equal(
                &reference,
                &grid,
                &format!("{threads} threads / {arm} arm"),
            );
            assert_eq!(
                reference_text, text,
                "rendered grid bytes drifted at {threads} threads / {arm} arm"
            );
        }
    }
    simd::set_global(before);
}

/// The headline claim: an amplified sign-flip from one hostile client
/// destroys the weighted mean — surfacing as typed per-client
/// `ClientDiverged` cells, not a worker panic — while the same run under
/// the coordinate-wise median completes with every client healthy.
#[test]
fn sign_flip_diverges_mean_but_median_survives() {
    let clients = clients(4);
    let factory = factory();
    let mut config = config();
    config.rounds = 4;
    config.local_steps = 8;
    // The scale must push corrupted coordinates far enough that the
    // products of two conv layers overflow f32 (inf − inf → NaN); a
    // merely-huge scale only saturates the sigmoid to a degenerate 0.5.
    let scenario =
        ScenarioConfig::honest(11, clients.len()).hostile_tail(1, Attack::SignFlip { scale: 1e38 });

    let mut mean_cfg = config.clone();
    mean_cfg.aggregation = Aggregation::WeightedMean;
    let mean = run_scenario(Method::FedProx, &clients, &factory, &mean_cfg, &scenario).unwrap();
    assert!(
        !mean.diverged().is_empty(),
        "sign-flip must blow up the weighted mean: {:?}",
        mean.cell_aucs()
    );
    for k in mean.diverged() {
        assert!(
            matches!(
                mean.cells[k],
                Err(FedError::ClientDiverged { client, .. }) if client == k
            ),
            "cell {k} must be a typed divergence: {:?}",
            mean.cells[k]
        );
    }

    let mut median_cfg = config;
    median_cfg.aggregation = Aggregation::Median;
    let median = run_scenario(Method::FedProx, &clients, &factory, &median_cfg, &scenario).unwrap();
    assert_eq!(
        median.diverged(),
        Vec::<usize>::new(),
        "the median must reject the minority sign-flip"
    );
    assert!(
        median.healthy_average_auc().unwrap() > 0.5,
        "median must keep learning: {:?}",
        median.cell_aucs()
    );
}
