//! Fast smoke test: every estimator in the zoo must construct and run one
//! forward pass at both capacity scales on feature-shaped input. This is
//! the cheap always-on guard that keeps the model zoo wired while the
//! real experiment tests stay release-only.

use decentralized_routability::eda::features::FEATURE_CHANNELS;
use decentralized_routability::nn::models::{build_model, ModelKind, ModelScale};
use decentralized_routability::tensor::rng::Xoshiro256;
use decentralized_routability::tensor::Tensor;

#[test]
fn every_model_kind_builds_and_runs_forward() {
    for kind in ModelKind::ALL {
        let mut rng = Xoshiro256::seed_from(0xDAC2022);
        let mut model = build_model(kind, FEATURE_CHANNELS, ModelScale::Scaled, &mut rng);
        assert!(model.param_count() > 0, "{kind}: no parameters");
        let x = Tensor::from_fn(&[2, FEATURE_CHANNELS, 16, 16], |_| rng.uniform());
        let y = model
            .forward(&x, false)
            .unwrap_or_else(|e| panic!("{kind}: forward failed: {e}"));
        assert_eq!(
            y.shape().dims(),
            &[2, 1, 16, 16],
            "{kind}: hotspot map shape"
        );
        assert!(
            y.data().iter().all(|v| v.is_finite()),
            "{kind}: non-finite output"
        );
        // Sigmoid head: outputs are probabilities.
        assert!(
            y.data().iter().all(|&v| (0.0..=1.0).contains(&v)),
            "{kind}: output outside [0, 1]"
        );
    }
}

#[test]
fn training_mode_forward_backward_smoke() {
    // One training-mode forward + backward per model: the gradient
    // plumbing must at least run on feature-shaped input.
    for kind in ModelKind::ALL {
        let mut rng = Xoshiro256::seed_from(99);
        let mut model = build_model(kind, FEATURE_CHANNELS, ModelScale::Scaled, &mut rng);
        let x = Tensor::from_fn(&[2, FEATURE_CHANNELS, 8, 8], |_| rng.uniform());
        let y = model
            .forward(&x, true)
            .unwrap_or_else(|e| panic!("{kind}: train forward failed: {e}"));
        let g = Tensor::full(y.shape().dims(), 0.5);
        model
            .backward(&g)
            .unwrap_or_else(|e| panic!("{kind}: backward failed: {e}"));
        model.zero_grad();
    }
}
