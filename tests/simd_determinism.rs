//! Property tests for the SIMD backend's determinism contract: every
//! dispatched kernel must produce **bit-identical** results on the
//! scalar arm and on whatever arm runtime detection picks (AVX2 on x86
//! CI). This is the guarantee that lets `RTE_SIMD` be a pure wall-clock
//! knob, exactly like `RTE_THREADS` — pinned here at two levels:
//!
//! - kernel level: randomized shapes (including empty, `k = 0` and
//!   non-multiple-of-8 tails) through the GEMM family and every
//!   elementwise sweep,
//! - system level: a full FedProx experiment whose [`MethodOutcome`]
//!   (losses, per-client AUCs, every `EvalReport` field) must not drift
//!   by a single bit when the process-global arm changes.
//!
//! On machines without AVX2 the detected arm *is* scalar and the
//! comparisons are trivially true — the suite stays meaningful on CI
//! x86 runners, where both arms genuinely differ.

use std::sync::Mutex;

use proptest::prelude::*;

use decentralized_routability::fed::{
    methods, Client, ClientSet, FedConfig, Method, MethodOutcome, ModelFactory, Parallelism,
};
use decentralized_routability::nn::models::{FlNet, FlNetConfig};
use decentralized_routability::tensor::rng::Xoshiro256;
use decentralized_routability::tensor::simd::{self, SimdBackend};
use decentralized_routability::tensor::Tensor;

/// Tests that mutate the process-global arm serialize on this lock so
/// they cannot observe each other's override (the kernel-level tests
/// use explicit `_with` arms and need no locking).
static GLOBAL_ARM: Mutex<()> = Mutex::new(());

fn rand_vec(len: usize, seed: u64) -> Vec<f32> {
    let mut rng = Xoshiro256::seed_from(seed);
    (0..len).map(|_| rng.normal()).collect()
}

fn assert_bits_eq(got: &[f32], want: &[f32], what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: length");
    for (i, (g, w)) in got.iter().zip(want.iter()).enumerate() {
        assert_eq!(g.to_bits(), w.to_bits(), "{what}[{i}]: {g} vs {w}");
    }
}

/// The arm the dispatched kernels would pick with `RTE_SIMD` unset.
fn detected() -> SimdBackend {
    SimdBackend::detect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// GEMM family: scalar vs detected arm, bitwise, over random shapes
    /// including degenerate dimensions and register-tile remainders.
    #[test]
    fn matmul_family_is_bitwise_arm_invariant(
        m in 0usize..20,
        k in 0usize..40,
        n in 0usize..36,
        seed in 0u64..100_000,
    ) {
        let a = rand_vec(m * k, seed);
        let b = rand_vec(k * n, seed ^ 1);
        let at = rand_vec(k * m, seed ^ 2);
        let bt = rand_vec(n * k, seed ^ 3);
        let acc0 = rand_vec(m * n, seed ^ 4);

        let mut want = vec![0.0f32; m * n];
        simd::matmul_with(SimdBackend::Scalar, &a, &b, m, k, n, &mut want);
        let mut got = vec![0.0f32; m * n];
        simd::matmul_with(detected(), &a, &b, m, k, n, &mut got);
        assert_bits_eq(&got, &want, &format!("matmul {m}x{k}x{n}"));

        let mut want_tn = vec![0.0f32; m * n];
        simd::matmul_tn_with(SimdBackend::Scalar, &at, &b, m, k, n, &mut want_tn);
        let mut got_tn = vec![0.0f32; m * n];
        simd::matmul_tn_with(detected(), &at, &b, m, k, n, &mut got_tn);
        assert_bits_eq(&got_tn, &want_tn, &format!("matmul_tn {m}x{k}x{n}"));

        let mut want_nt = acc0.clone();
        simd::matmul_nt_acc_with(SimdBackend::Scalar, &a, &bt, m, k, n, &mut want_nt);
        let mut got_nt = acc0;
        simd::matmul_nt_acc_with(detected(), &a, &bt, m, k, n, &mut got_nt);
        assert_bits_eq(&got_nt, &want_nt, &format!("matmul_nt_acc {m}x{k}x{n}"));
    }

    /// Elementwise sweeps and reductions: scalar vs detected arm,
    /// bitwise, over random lengths crossing the 8-lane boundary.
    #[test]
    fn elementwise_kernels_are_bitwise_arm_invariant(
        len in 0usize..70,
        alpha_scaled in -40i32..40,
        seed in 0u64..100_000,
    ) {
        let alpha = alpha_scaled as f32 * 0.1;
        let x = rand_vec(len, seed);
        let g = rand_vec(len, seed ^ 10);

        let mut want = x.clone();
        simd::axpy_with(SimdBackend::Scalar, alpha, &g, &mut want);
        let mut got = x.clone();
        simd::axpy_with(detected(), alpha, &g, &mut got);
        assert_bits_eq(&got, &want, "axpy");

        let mut want = x.clone();
        simd::scale_with(SimdBackend::Scalar, alpha, &mut want);
        let mut got = x.clone();
        simd::scale_with(detected(), alpha, &mut got);
        assert_bits_eq(&got, &want, "scale");

        let want = simd::sum_with(SimdBackend::Scalar, &x);
        let got = simd::sum_with(detected(), &x);
        assert_eq!(got.to_bits(), want.to_bits(), "sum: {got} vs {want}");

        for wd in [0.0f32, 1e-5] {
            let mut want = x.clone();
            simd::sgd_step_with(SimdBackend::Scalar, &mut want, &g, 2e-4, wd);
            let mut got = x.clone();
            simd::sgd_step_with(detected(), &mut got, &g, 2e-4, wd);
            assert_bits_eq(&got, &want, "sgd_step");
        }

        let step = simd::AdamStep {
            beta1: 0.9,
            beta2: 0.999,
            bias1: 0.271,
            bias2: 0.00299,
            lr: 2e-4,
            eps: 1e-8,
            weight_decay: 1e-5,
        };
        let m0 = rand_vec(len, seed ^ 20);
        let v0: Vec<f32> = rand_vec(len, seed ^ 30).iter().map(|v| v.abs()).collect();
        let (mut wp, mut wm, mut wv) = (x.clone(), m0.clone(), v0.clone());
        simd::adam_step_with(SimdBackend::Scalar, &mut wp, &mut wm, &mut wv, &g, &step);
        let (mut gp, mut gm, mut gv) = (x.clone(), m0, v0);
        simd::adam_step_with(detected(), &mut gp, &mut gm, &mut gv, &g, &step);
        assert_bits_eq(&gp, &wp, "adam value");
        assert_bits_eq(&gm, &wm, "adam m");
        assert_bits_eq(&gv, &wv, "adam v");

        let mut want = x.clone();
        simd::relu_with(SimdBackend::Scalar, &mut want);
        let mut got = x.clone();
        simd::relu_with(detected(), &mut got);
        assert_bits_eq(&got, &want, "relu");

        let mut want = g.clone();
        simd::relu_backward_with(SimdBackend::Scalar, &mut want, &x);
        let mut got = g.clone();
        simd::relu_backward_with(detected(), &mut got, &x);
        assert_bits_eq(&got, &want, "relu_backward");

        let mut want = x.clone();
        simd::sigmoid_with(SimdBackend::Scalar, &mut want);
        let mut got = x.clone();
        simd::sigmoid_with(detected(), &mut got);
        assert_bits_eq(&got, &want, "sigmoid");

        let y = want;
        let mut want = g.clone();
        simd::sigmoid_backward_with(SimdBackend::Scalar, &mut want, &y);
        let mut got = g;
        simd::sigmoid_backward_with(detected(), &mut got, &y);
        assert_bits_eq(&got, &want, "sigmoid_backward");
    }
}

/// A small heterogeneous client: labels keyed to channel 0 with a
/// per-client threshold shift (mirrors `tests/parallel_determinism.rs`).
fn synthetic_client(id: usize, n_train: usize, n_test: usize, seed: u64) -> Client {
    let threshold = 0.4 + 0.15 * (id as f32 % 3.0) / 3.0;
    let make = |n: usize, salt: u64| -> ClientSet {
        let mut rng = Xoshiro256::seed_from(seed ^ salt);
        let mut x = Tensor::from_fn(&[n, 2, 8, 8], |_| rng.uniform());
        let mut y = Tensor::zeros(&[n, 1, 8, 8]);
        for ni in 0..n {
            for i in 0..64 {
                let v = x.data()[ni * 128 + i];
                y.data_mut()[ni * 64 + i] = if v > threshold { 1.0 } else { 0.0 };
            }
            for i in 0..64 {
                x.data_mut()[ni * 128 + 64 + i] = rng.uniform();
            }
        }
        ClientSet::new(x, y).unwrap()
    };
    Client::new(id, make(n_train, 0xAAAA), make(n_test, 0xBBBB))
}

fn factory() -> ModelFactory {
    Box::new(|seed| {
        let mut rng = Xoshiro256::seed_from(seed);
        Box::new(FlNet::new(
            FlNetConfig {
                in_channels: 2,
                hidden: 4,
                kernel: 3,
                depth: 2,
            },
            &mut rng,
        ))
    })
}

fn assert_outcomes_bitwise_equal(a: &MethodOutcome, b: &MethodOutcome, what: &str) {
    assert_eq!(a.average_auc.to_bits(), b.average_auc.to_bits(), "{what}");
    assert_eq!(a.per_client_auc.len(), b.per_client_auc.len(), "{what}");
    for (k, (x, y)) in a
        .per_client_auc
        .iter()
        .zip(b.per_client_auc.iter())
        .enumerate()
    {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: client {k}: {x} vs {y}");
    }
    for (ra, rb) in a.per_client.iter().zip(b.per_client.iter()) {
        assert_eq!(ra.auc.to_bits(), rb.auc.to_bits(), "{what}: report AUC");
        assert_eq!(
            ra.average_precision.to_bits(),
            rb.average_precision.to_bits(),
            "{what}: report AP"
        );
        assert_eq!(ra.confusion, rb.confusion, "{what}: report confusion");
        assert_eq!(ra.histogram, rb.histogram, "{what}: report histogram");
    }
    assert_eq!(a.history.len(), b.history.len(), "{what}");
    for (ra, rb) in a.history.iter().zip(b.history.iter()) {
        assert_eq!(
            ra.mean_train_loss.to_bits(),
            rb.mean_train_loss.to_bits(),
            "{what}: round {} training loss",
            ra.round
        );
        for (x, y) in ra.per_client_auc.iter().zip(rb.per_client_auc.iter()) {
            assert_eq!(x.to_bits(), y.to_bits(), "{what}: round {}", ra.round);
        }
    }
}

/// A full FedProx experiment must produce a bit-identical
/// [`MethodOutcome`] on the scalar and the detected arm — end to end:
/// corpus tensors through conv/activation/optimizer sweeps to AUC. Run
/// at both thread counts so the SIMD axis composes with the thread axis.
#[test]
fn fedprox_outcome_is_bitwise_arm_invariant() {
    let _guard = GLOBAL_ARM.lock().unwrap();
    let before = simd::global();
    let clients: Vec<Client> = (0..3)
        .map(|k| synthetic_client(k + 1, 4, 2, 9000 + k as u64))
        .collect();
    let factory = factory();
    let mut config = FedConfig::tiny();
    config.rounds = 2;
    config.local_steps = 2;
    config.batch_size = 2;
    config.mu = 0.05;
    config.seed = 77;
    for threads in [1usize, 4] {
        config.parallelism = Parallelism::new(threads);
        simd::set_global(SimdBackend::Scalar);
        let scalar = methods::run_method(Method::FedProx, &clients, &factory, &config).unwrap();
        simd::set_global(SimdBackend::detect());
        let dispatched = methods::run_method(Method::FedProx, &clients, &factory, &config).unwrap();
        assert_outcomes_bitwise_equal(
            &scalar,
            &dispatched,
            &format!(
                "fedprox scalar vs {} @ {threads} threads",
                SimdBackend::detect()
            ),
        );
    }
    simd::set_global(before);
}

/// The forced-arm knob must round-trip through the process global, and
/// `parse` must accept exactly the documented spellings.
#[test]
fn global_arm_override_round_trips() {
    let _guard = GLOBAL_ARM.lock().unwrap();
    let before = simd::global();
    simd::set_global(SimdBackend::Scalar);
    assert_eq!(simd::global(), SimdBackend::Scalar);
    simd::set_global(before);
    assert_eq!(simd::global(), before);
    assert_eq!(SimdBackend::parse("scalar"), SimdBackend::Scalar);
    assert_eq!(SimdBackend::parse("auto"), SimdBackend::detect());
}
